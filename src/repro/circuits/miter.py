"""Miter construction for combinational equivalence checking.

A *miter* of circuits A and B ties their primary inputs together, XORs
each pair of corresponding outputs, ORs the XORs into a single net, and
asks whether that net can be 1.  UNSAT means the circuits are
equivalent; a model is a distinguishing input vector.  This is the
construction behind the paper's *Miters* class and (composed with the
datapath generators) the microprocessor-verification classes.
"""

from __future__ import annotations

from repro.cnf.formula import CnfFormula
from repro.circuits.netlist import Circuit, CircuitError
from repro.circuits.tseitin import TseitinEncoding, encode_circuit


def build_miter(left: Circuit, right: Circuit, name: str = "") -> Circuit:
    """Return a miter circuit whose single output is 1 iff outputs differ.

    Both circuits must have identical input and output name lists; the
    miter reuses the shared input names and namespaces internal nets.
    """
    if left.inputs != right.inputs:
        raise CircuitError("miter requires identical primary-input lists")
    if len(left.outputs) != len(right.outputs):
        raise CircuitError("miter requires the same number of outputs")
    if not left.outputs:
        raise CircuitError("miter requires at least one output")

    miter = Circuit(name or f"miter({left.name},{right.name})")
    miter.add_inputs(left.inputs)
    mapping_left = _embed(miter, left, "L.")
    mapping_right = _embed(miter, right, "R.")

    difference_nets = []
    for index, (out_left, out_right) in enumerate(zip(left.outputs, right.outputs)):
        net = f"diff{index}"
        miter.add_gate("XOR", net, mapping_left[out_left], mapping_right[out_right])
        difference_nets.append(net)
    if len(difference_nets) == 1:
        miter.add_gate("BUF", "miter_out", difference_nets[0])
    else:
        miter.add_gate("OR", "miter_out", *difference_nets)
    miter.set_outputs(["miter_out"])
    return miter


def _embed(miter: Circuit, circuit: Circuit, prefix: str) -> dict[str, str]:
    """Copy ``circuit``'s gates into ``miter`` with prefixed internal nets.

    Primary inputs keep their shared (unprefixed) names.
    """
    mapping = {net: net for net in circuit.inputs}
    for gate in circuit.topological_order():
        new_net = prefix + gate.output
        mapping[gate.output] = new_net
        miter.add_gate(gate.operation, new_net, *(mapping[net] for net in gate.inputs))
    return mapping


def miter_formula(left: Circuit, right: Circuit, name: str = "") -> CnfFormula:
    """CNF asking "do the circuits differ on some input?" (UNSAT = equivalent)."""
    miter = build_miter(left, right, name)
    encoding = encode_circuit(miter)
    encoding.assume_input("miter_out", True)
    encoding.formula.comment = (
        f"miter of {left.name or 'left'} vs {right.name or 'right'}; "
        "UNSAT means the circuits are equivalent"
    )
    return encoding.formula


def check_equivalence(left: Circuit, right: Circuit, solver_factory=None, **limits):
    """Decide equivalence with a SAT solver.

    Returns ``(equivalent, counterexample)`` where ``counterexample`` is
    an input-vector dict when the circuits differ, else ``None``.  The
    default solver is BerkMin; pass ``solver_factory`` (a callable
    ``formula -> Solver``) to override.
    """
    from repro.solver.solver import Solver

    miter = build_miter(left, right)
    encoding = encode_circuit(miter)
    encoding.assume_input("miter_out", True)
    solver = solver_factory(encoding.formula) if solver_factory else Solver(encoding.formula)
    result = solver.solve(**limits)
    if result.is_unsat:
        return True, None
    if result.is_sat:
        assert result.model is not None
        nets = encoding.decode_nets(result.model)
        return False, {net: nets[net] for net in miter.inputs}
    raise RuntimeError(f"equivalence check inconclusive: {result.limit_reason}")
