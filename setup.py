"""Shim for legacy (non-PEP-517) editable installs.

The offline environment ships setuptools without the ``wheel`` package,
so ``pip install -e .`` must fall back to ``setup.py develop``; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
