"""Blocks-world: state mechanics, BFS ground truth, and the CNF encoding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.blocksworld import (
    BlocksState,
    blocksworld_formula,
    decode_blocksworld_plan,
    optimal_plan_length,
    random_blocks_state,
    validate_blocksworld_plan,
)
from repro.solver.solver import Solver


def test_state_canonicalization_and_validation():
    state = BlocksState.from_stacks([(2, 0), (1,)])
    assert state.stacks == ((1,), (2, 0))
    with pytest.raises(ValueError):
        BlocksState.from_stacks([(0, 0)])
    with pytest.raises(ValueError):
        BlocksState.from_stacks([(0, 3)])  # numbering gap
    with pytest.raises(ValueError):
        BlocksState(((),))


def test_supports_and_clear():
    state = BlocksState.from_stacks([(0, 1), (2,)])
    assert state.supports() == {0: 3, 1: 0, 2: 3}  # 3 = table
    assert state.clear_blocks() == {1, 2}


def test_successors_are_legal_and_complete():
    state = BlocksState.from_stacks([(0, 1), (2,)])
    moves = dict(state.successors())
    # Clear blocks: 1 and 2. Moves: 1->table, 1->2, 2->1 (2 is on table already).
    assert (1, 3) in moves
    assert (1, 2) in moves
    assert (2, 1) in moves
    assert (0, 3) not in moves  # 0 is not clear


def test_random_state_is_deterministic():
    assert random_blocks_state(6, 3) == random_blocks_state(6, 3)
    assert random_blocks_state(6, 3).num_blocks == 6


def test_optimal_plan_length_examples():
    same = random_blocks_state(4, 1)
    assert optimal_plan_length(same, same) == 0
    a = BlocksState.from_stacks([(0, 1)])
    b = BlocksState.from_stacks([(1, 0)])
    assert optimal_plan_length(a, b) == 2  # unstack 1, then stack 0 onto 1


def test_block_set_mismatch_rejected():
    with pytest.raises(ValueError):
        optimal_plan_length(random_blocks_state(3, 0), random_blocks_state(4, 0))
    with pytest.raises(ValueError):
        blocksworld_formula(random_blocks_state(3, 0), random_blocks_state(4, 0), 3)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 4), st.integers(0, 100), st.integers(0, 100))
def test_sat_exactly_at_and_above_optimum(num_blocks, seed_a, seed_b):
    """The central property: CNF horizon feasibility == BFS optimum."""
    initial = random_blocks_state(num_blocks, seed_a)
    goal = random_blocks_state(num_blocks, seed_b)
    optimum = optimal_plan_length(initial, goal)
    at = Solver(blocksworld_formula(initial, goal, optimum)).solve()
    assert at.is_sat
    above = Solver(blocksworld_formula(initial, goal, optimum + 1)).solve()
    assert above.is_sat
    if optimum > 0:
        below = Solver(blocksworld_formula(initial, goal, optimum - 1)).solve()
        assert below.is_unsat


def test_decoded_plans_replay_on_real_dynamics():
    rng = random.Random(5)
    for _ in range(5):
        initial = random_blocks_state(4, rng.randint(0, 999))
        goal = random_blocks_state(4, rng.randint(0, 999))
        horizon = optimal_plan_length(initial, goal) + 1
        result = Solver(blocksworld_formula(initial, goal, horizon)).solve()
        assert result.is_sat
        plan = decode_blocksworld_plan(result.model, 4, horizon)
        assert validate_blocksworld_plan(plan, initial, goal)


def test_zero_horizon():
    state = random_blocks_state(3, 7)
    assert Solver(blocksworld_formula(state, state, 0)).solve().is_sat
    other = random_blocks_state(3, 8)
    if other != state:
        assert Solver(blocksworld_formula(state, other, 0)).solve().is_unsat
