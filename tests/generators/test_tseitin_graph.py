"""Tseitin graph formulas."""

import random

import networkx as nx
import pytest

from repro.baselines.brute import brute_force_satisfiable
from repro.generators.tseitin_graph import (
    tseitin_formula,
    tseitin_satisfiable,
    urquhart_like_formula,
)
from repro.solver.solver import Solver


def test_even_charge_cycle_is_sat():
    graph = nx.cycle_graph(6)
    charges = {0: True, 3: True}
    assert tseitin_satisfiable(graph, charges)
    assert Solver(tseitin_formula(graph, charges)).solve().is_sat


def test_odd_charge_cycle_is_unsat():
    graph = nx.cycle_graph(6)
    charges = {0: True}
    assert not tseitin_satisfiable(graph, charges)
    assert Solver(tseitin_formula(graph, charges)).solve().is_unsat


def test_per_component_parity():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)])
    # Component {0,1,2} even, component {10,11,12} odd -> UNSAT overall.
    charges = {0: True, 1: True, 10: True}
    assert not tseitin_satisfiable(graph, charges)
    assert Solver(tseitin_formula(graph, charges)).solve().is_unsat


def test_ground_truth_matches_solver_on_random_graphs():
    rng = random.Random(7)
    for trial in range(10):
        graph = nx.gnp_random_graph(7, 0.4, seed=trial)
        charges = {node: rng.random() < 0.5 for node in graph.nodes()}
        expected = tseitin_satisfiable(graph, charges)
        formula = tseitin_formula(graph, charges)
        if formula.num_variables == 0:
            # No edges: satisfiable iff no vertex is charged.
            assert expected == all(not value for value in charges.values())
            continue
        result = Solver(formula).solve()
        assert result.is_sat == expected, (trial, charges)


def test_ground_truth_matches_brute_force():
    rng = random.Random(3)
    for trial in range(8):
        graph = nx.gnp_random_graph(6, 0.5, seed=100 + trial)
        if graph.number_of_edges() == 0 or graph.number_of_edges() > 12:
            continue
        charges = {node: rng.random() < 0.5 for node in graph.nodes()}
        formula = tseitin_formula(graph, charges)
        assert brute_force_satisfiable(formula) == tseitin_satisfiable(graph, charges)


def test_urquhart_like_is_unsat():
    formula = urquhart_like_formula(8, degree=4, seed=1)
    assert "UNSAT" in formula.comment
    assert Solver(formula).solve().is_unsat


def test_urquhart_like_satisfiable_variant():
    formula = urquhart_like_formula(8, degree=4, seed=1, satisfiable=True)
    assert Solver(formula).solve().is_sat


def test_urquhart_validation():
    with pytest.raises(ValueError):
        urquhart_like_formula(7, degree=3)  # odd product
    with pytest.raises(ValueError):
        urquhart_like_formula(3, degree=4)


def test_comment_records_status():
    graph = nx.cycle_graph(4)
    assert "SAT" in tseitin_formula(graph, {0: True, 1: True}).comment
    assert "UNSAT" in tseitin_formula(graph, {0: True}).comment
