"""N-queens CNFs."""

import pytest

from repro.generators.queens import decode_queens, queens_formula
from repro.solver.solver import Solver


def _attacks(row_a, col_a, row_b, col_b):
    return (
        row_a == row_b
        or col_a == col_b
        or abs(row_a - row_b) == abs(col_a - col_b)
    )


@pytest.mark.parametrize("size", [1, 4, 5, 6, 8])
def test_solvable_sizes(size):
    result = Solver(queens_formula(size)).solve()
    assert result.is_sat
    placement = decode_queens(result.model, size)
    for row_a in range(size):
        for row_b in range(row_a + 1, size):
            assert not _attacks(row_a, placement[row_a], row_b, placement[row_b])


@pytest.mark.parametrize("size", [2, 3])
def test_unsolvable_sizes(size):
    assert Solver(queens_formula(size)).solve().is_unsat


def test_decode_rejects_bad_models():
    formula = queens_formula(4)
    fake = {v: False for v in range(1, formula.num_variables + 1)}
    with pytest.raises(ValueError):
        decode_queens(fake, 4)


def test_size_validation():
    with pytest.raises(ValueError):
        queens_formula(0)
