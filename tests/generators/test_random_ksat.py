"""Random and planted k-SAT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.random_ksat import planted_ksat, random_ksat
from repro.solver.solver import Solver


def test_shapes():
    formula = random_ksat(20, 50, 3, seed=1)
    assert formula.num_variables == 20
    assert formula.num_clauses == 50
    assert all(len(clause) == 3 for clause in formula.clauses)
    assert all(len({abs(l) for l in clause}) == 3 for clause in formula.clauses)


def test_determinism():
    assert random_ksat(10, 20, 3, 5).clauses == random_ksat(10, 20, 3, 5).clauses
    assert planted_ksat(10, 20, 3, 5).clauses == planted_ksat(10, 20, 3, 5).clauses


def test_different_seeds_differ():
    assert random_ksat(10, 20, 3, 1).clauses != random_ksat(10, 20, 3, 2).clauses


@settings(max_examples=15, deadline=None)
@given(st.integers(5, 30), st.integers(0, 1000))
def test_planted_instances_are_sat(num_variables, seed):
    formula = planted_ksat(num_variables, 4 * num_variables, 3, seed)
    result = Solver(formula).solve(max_conflicts=50_000)
    assert result.is_sat


def test_arity_validation():
    with pytest.raises(ValueError):
        random_ksat(2, 5, 3, 0)
    with pytest.raises(ValueError):
        planted_ksat(2, 5, 0, 0)
