"""Sudoku encoder/decoder."""

import pytest

from repro.generators.sudoku import (
    EXAMPLE_PUZZLE,
    decode_sudoku,
    sudoku_formula,
    sudoku_puzzle,
)
from repro.solver.solver import Solver


def _check_solution(grid, box=3):
    size = box * box
    expected = set(range(1, size + 1))
    for row in grid:
        assert set(row) == expected
    for column in range(size):
        assert {grid[row][column] for row in range(size)} == expected
    for box_row in range(box):
        for box_column in range(box):
            cells = {
                grid[box_row * box + r][box_column * box + c]
                for r in range(box)
                for c in range(box)
            }
            assert cells == expected


def test_parse_puzzle():
    grid = sudoku_puzzle()
    assert len(grid) == 9
    assert grid[0][0] == 5
    assert grid[0][2] == 0


def test_parse_with_dots():
    grid = sudoku_puzzle("1." + "0" * 14)
    assert grid[0] == [1, 0, 0, 0]


def test_parse_rejects_non_square():
    with pytest.raises(ValueError):
        sudoku_puzzle("123")


def test_solve_example_puzzle():
    grid = sudoku_puzzle()
    result = Solver(sudoku_formula(grid)).solve()
    assert result.is_sat
    solution = decode_sudoku(result.model)
    _check_solution(solution)
    # Clues preserved.
    for row in range(9):
        for column in range(9):
            if grid[row][column]:
                assert solution[row][column] == grid[row][column]


def test_known_unique_solution_first_row():
    result = Solver(sudoku_formula(sudoku_puzzle(EXAMPLE_PUZZLE))).solve()
    assert decode_sudoku(result.model)[0] == [5, 3, 4, 6, 7, 8, 9, 1, 2]


def test_4x4_sudoku():
    grid = [[1, 0, 0, 0], [0, 0, 3, 0], [0, 4, 0, 0], [0, 0, 0, 2]]
    result = Solver(sudoku_formula(grid, box=2)).solve()
    assert result.is_sat
    _check_solution(decode_sudoku(result.model, box=2), box=2)


def test_contradictory_clues_unsat():
    grid = sudoku_puzzle()
    grid[0][2] = 5  # clashes with the 5 at (0, 0)
    assert Solver(sudoku_formula(grid)).solve().is_unsat


def test_grid_shape_validation():
    with pytest.raises(ValueError):
        sudoku_formula([[1, 2], [3, 4]])
