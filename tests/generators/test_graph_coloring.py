"""Graph-coloring CNFs."""

import networkx as nx
import pytest

from repro.generators.graph_coloring import (
    coloring_formula,
    odd_cycle_formula,
    planted_coloring_formula,
)
from repro.solver.solver import Solver


def test_triangle_needs_three_colors():
    triangle = nx.complete_graph(3)
    assert Solver(coloring_formula(triangle, 2)).solve().is_unsat
    assert Solver(coloring_formula(triangle, 3)).solve().is_sat


def test_complete_graph_chromatic_number():
    k5 = nx.complete_graph(5)
    assert Solver(coloring_formula(k5, 4)).solve().is_unsat
    assert Solver(coloring_formula(k5, 5)).solve().is_sat


def test_odd_cycles_not_two_colorable():
    for length in (3, 5, 9):
        assert Solver(odd_cycle_formula(length)).solve().is_unsat


def test_even_cycle_is_two_colorable():
    assert Solver(coloring_formula(nx.cycle_graph(8), 2)).solve().is_sat


def test_odd_cycle_validation():
    with pytest.raises(ValueError):
        odd_cycle_formula(4)
    with pytest.raises(ValueError):
        odd_cycle_formula(1)


def test_model_is_a_proper_coloring():
    graph = nx.petersen_graph()
    colors = 3
    result = Solver(coloring_formula(graph, colors)).solve()
    assert result.is_sat
    nodes = list(graph.nodes())
    index = {node: position for position, node in enumerate(nodes)}
    assignment = {}
    for node in nodes:
        chosen = [
            color
            for color in range(colors)
            if result.model[index[node] * colors + color + 1]
        ]
        assert len(chosen) == 1
        assignment[node] = chosen[0]
    for left, right in graph.edges():
        assert assignment[left] != assignment[right]


def test_planted_coloring_is_sat():
    for seed in range(3):
        formula = planted_coloring_formula(12, 3, 24, seed)
        assert Solver(formula).solve().is_sat


def test_planted_coloring_validation():
    with pytest.raises(ValueError):
        planted_coloring_formula(5, 1, 4, 0)
    with pytest.raises(ValueError):
        planted_coloring_formula(2, 3, 1, 0)


def test_color_count_validation():
    with pytest.raises(ValueError):
        coloring_formula(nx.path_graph(3), 0)


def test_self_loops_are_ignored():
    graph = nx.Graph()
    graph.add_edge(0, 0)
    graph.add_edge(0, 1)
    assert Solver(coloring_formula(graph, 2)).solve().is_sat
