"""Pigeonhole instances."""

import pytest

from repro.baselines.brute import brute_force_satisfiable
from repro.generators.pigeonhole import pigeonhole_formula
from repro.solver.solver import Solver


def test_unsat_when_more_pigeons():
    for holes in (1, 2, 3, 4):
        formula = pigeonhole_formula(holes)
        assert not brute_force_satisfiable(formula)


def test_sat_when_enough_holes():
    for holes, pigeons in ((3, 3), (4, 2)):
        formula = pigeonhole_formula(holes, pigeons)
        assert brute_force_satisfiable(formula)


def test_clause_and_variable_counts():
    holes, pigeons = 4, 5
    formula = pigeonhole_formula(holes)
    assert formula.num_variables == pigeons * holes
    expected_clauses = pigeons + holes * (pigeons * (pigeons - 1) // 2)
    assert formula.num_clauses == expected_clauses


def test_solver_refutes_hole6():
    assert Solver(pigeonhole_formula(6)).solve().is_unsat


def test_validation():
    with pytest.raises(ValueError):
        pigeonhole_formula(0)
    with pytest.raises(ValueError):
        pigeonhole_formula(3, 0)


def test_comment_mentions_status():
    assert "UNSAT" in pigeonhole_formula(3).comment
    assert "SAT" in pigeonhole_formula(3, 2).comment
