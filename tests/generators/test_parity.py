"""XOR systems: GF(2) elimination ground truth and CNF compilation."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.generators.parity import (
    XorSystem,
    random_xor_system,
    xor_clauses,
    xor_system_formula,
)
from repro.solver.solver import Solver


def test_xor_clauses_two_literals():
    from repro.baselines.brute import brute_force_model

    formula = CnfFormula(num_variables=2)
    xor_clauses(formula, [1, 2], True)
    model = brute_force_model(formula)
    assert model is not None
    assert model[1] != model[2]
    # Forcing equal values must refute the XOR.
    forced = formula.copy()
    forced.add_clause([1])
    forced.add_clause([2])
    assert not brute_force_satisfiable(forced)


def test_xor_clauses_parity_false():
    formula = CnfFormula(num_variables=2)
    xor_clauses(formula, [1, 2], False)
    formula_true = CnfFormula(num_variables=2)
    xor_clauses(formula_true, [1, 2], True)
    # Exactly the complementary assignments are allowed.
    from repro.baselines.brute import brute_force_model

    model = brute_force_model(formula)
    assert model[1] == model[2]


def test_empty_xor_with_odd_parity_is_unsat():
    formula = CnfFormula()
    xor_clauses(formula, [], True)
    assert formula.clauses == [[]]


def test_empty_xor_with_even_parity_is_noop():
    formula = CnfFormula()
    xor_clauses(formula, [], False)
    assert formula.num_clauses == 0


def test_gf2_consistency_matches_brute_force():
    rng = random.Random(2)
    for _ in range(40):
        num_variables = rng.randint(1, 5)
        rows = []
        for _ in range(rng.randint(1, 5)):
            arity = rng.randint(1, min(3, num_variables))
            rows.append(
                (rng.sample(range(1, num_variables + 1), arity), rng.random() < 0.5)
            )
        system = XorSystem(num_variables, rows)
        formula = xor_system_formula(system)
        assert system.is_consistent() == brute_force_satisfiable(formula)


def test_planted_systems_are_consistent():
    for seed in range(5):
        system = random_xor_system(12, 10, 3, seed, planted=True)
        assert system.is_consistent()
        result = Solver(xor_system_formula(system)).solve()
        assert result.is_sat


def test_unplanted_systems_are_inconsistent():
    for seed in range(5):
        system = random_xor_system(8, 20, 3, seed, planted=False)
        assert not system.is_consistent()
        result = Solver(xor_system_formula(system)).solve()
        assert result.is_unsat


def test_models_satisfy_the_equations():
    system = random_xor_system(10, 8, 3, seed=4, planted=True)
    formula = xor_system_formula(system)
    result = Solver(formula).solve()
    assignment = {v: result.model[v] for v in range(1, system.num_variables + 1)}
    assert system.evaluate(assignment)


def test_arity_validation():
    with pytest.raises(ValueError):
        random_xor_system(3, 5, 4, seed=0)
    with pytest.raises(ValueError):
        random_xor_system(3, 5, 0, seed=0)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.integers(1, 10), st.integers(0, 500))
def test_generator_is_deterministic(num_variables, num_equations, seed):
    arity = min(3, num_variables)
    first = random_xor_system(num_variables, num_equations, arity, seed)
    second = random_xor_system(num_variables, num_equations, arity, seed)
    assert first.rows == second.rows
