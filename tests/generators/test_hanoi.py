"""Towers-of-Hanoi planning encodings."""

import pytest

from repro.generators.hanoi import (
    decode_hanoi_plan,
    hanoi_formula,
    optimal_hanoi_length,
    validate_hanoi_plan,
)
from repro.solver.solver import Solver


def test_optimal_lengths():
    assert [optimal_hanoi_length(n) for n in (1, 2, 3, 4)] == [1, 3, 7, 15]


@pytest.mark.parametrize("disks", [1, 2, 3])
def test_optimal_horizon_is_sat_with_valid_plan(disks):
    horizon = optimal_hanoi_length(disks)
    result = Solver(hanoi_formula(disks)).solve()
    assert result.is_sat
    plan = decode_hanoi_plan(result.model, disks, horizon)
    assert len(plan) == horizon
    assert validate_hanoi_plan(plan, disks)


@pytest.mark.parametrize("disks,horizon", [(2, 2), (3, 6), (3, 4)])
def test_below_optimal_is_unsat(disks, horizon):
    assert Solver(hanoi_formula(disks, horizon)).solve().is_unsat


@pytest.mark.parametrize("extra", [1, 2])
def test_padded_horizons_stay_sat(extra):
    disks = 3
    horizon = optimal_hanoi_length(disks) + extra
    result = Solver(hanoi_formula(disks, horizon)).solve()
    assert result.is_sat
    plan = decode_hanoi_plan(result.model, disks, horizon)
    assert validate_hanoi_plan(plan, disks)


def test_validate_rejects_illegal_plans():
    # Moving the large disk first is illegal (a smaller one sits on it).
    assert not validate_hanoi_plan([(1, 0, 2)], 2)
    # Moving a disk onto a smaller one is illegal.
    assert not validate_hanoi_plan([(0, 0, 1), (1, 0, 1)], 2)
    # The optimal 2-disk plan is legal.
    assert validate_hanoi_plan([(0, 0, 1), (1, 0, 2), (0, 1, 2)], 2)


def test_decoder_rejects_garbage_models():
    formula = hanoi_formula(2)
    fake_model = {v: False for v in range(1, formula.num_variables + 1)}
    with pytest.raises(ValueError):
        decode_hanoi_plan(fake_model, 2, 3)


def test_parameter_validation():
    with pytest.raises(ValueError):
        hanoi_formula(0)
    with pytest.raises(ValueError):
        hanoi_formula(2, 0)


def test_comment_records_status():
    assert "SAT" in hanoi_formula(2).comment
    assert "UNSAT" in hanoi_formula(2, 2).comment
