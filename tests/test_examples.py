"""Smoke-run the fast example scripts end to end.

The slower examples (equivalence_checking, atpg, ablation_study) are
exercised through the library tests that cover the same code paths; the
Makefile ``examples`` target runs all of them.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sudoku.py",
    "planning.py",
    "bounded_model_checking.py",
    "parallel_solving.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_output_content(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "UNSAT proven" in output
    assert "hole6 under berkmin" in output
    assert "core:" in output


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(("#!", '"""')), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"
