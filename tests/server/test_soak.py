"""The soak test: hundreds of concurrent clients against a faulted pool.

The acceptance scenario for the solver service: >=500 concurrent
requests from many connections against a 4-worker pool while a fault
plan kills workers mid-search (SIGKILL after 100 conflicts), at entry
(crash), by wedging (stall), and by corrupting a result.  Every client
must get a verified answer, a truthful UNKNOWN, or an explicit
BUSY/DEADLINE refusal — no hangs, no wrong answers, no orphaned
worker processes, and a clean shutdown afterwards.
"""

import asyncio
import multiprocessing
import time

from repro.generators import pigeonhole_formula
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.retry import RetryPolicy
from repro.server.admission import AdmissionController
from repro.server.client import AsyncSolverClient
from repro.server.server import SolverServer
from repro.server.service import SolverService
from repro.solver.config import VERIFY_FULL, config_by_name

CONNECTIONS = 8
REQUESTS_PER_CONNECTION = 63  # 8 * 63 = 504 flood requests

# Distinct formulas with ground truth known by construction.  Each
# appears many times across the flood, so the shared answer cache and
# its single-flight-free concurrency both get exercised.
FLOOD = []
for j in range(1, 26):
    FLOOD.append(([[j]], "SAT"))
    FLOOD.append(([[j], [-j]], "UNSAT"))

# The four victims are submitted first so they take pool job ids 0-3,
# which is what the fault plan keys on.  All four first attempts die;
# retries run clean.
HOLE6 = [list(clause) for clause in pigeonhole_formula(6).clauses]
VICTIMS = [
    (HOLE6, "UNSAT"),  # job 0: SIGKILL mid-search after 100 conflicts
    ([[101, 102], [-101, 102]], "SAT"),  # job 1: crash at entry
    ([[103], [104]], "SAT"),  # job 2: computes, then wedges (stall)
    ([[105, 106], [105, -106]], "SAT"),  # job 3: corrupted result
]
FAULT_PLAN = FaultPlan(
    specs=(
        FaultSpec(mode="signal", worker=0, attempt=0, after_conflicts=100),
        FaultSpec(mode="crash", worker=1, attempt=0),
        FaultSpec(mode="stall", worker=2, attempt=0, seconds=60.0),
        FaultSpec(mode="corrupt", worker=3, attempt=0),
    )
)

HOLE8 = [list(clause) for clause in pigeonhole_formula(8).clauses]


def test_soak_500_concurrent_requests_under_worker_killing_faults():
    async def scenario():
        service = SolverService(
            pool_size=4,
            config=config_by_name("berkmin", seed=42),
            verification=VERIFY_FULL,
            retry=RetryPolicy(max_attempts=3, backoff=0.02),
            stall_seconds=1.0,
            admission=AdmissionController(max_queue=64, per_client=64),
            fault_plan=FAULT_PLAN,
        )
        server = SolverServer(service, port=0)
        await server.start()
        try:
            clients = [AsyncSolverClient(port=server.port) for _ in range(CONNECTIONS)]
            for client in clients:
                await client.connect()
            try:
                # Victims first: wait until all four occupy job ids 0-3.
                victim_tasks = [
                    asyncio.create_task(
                        clients[0].solve(clauses, timeout=30.0)
                    )
                    for clauses, _ in VICTIMS
                ]
                deadline = time.monotonic() + 20.0
                while service._next_job_id < len(VICTIMS):
                    assert time.monotonic() < deadline, "victims never submitted"
                    await asyncio.sleep(0.01)
                # Two probes whose deadlines cannot be met: explicit
                # DEADLINE replies, never silence.
                probe_tasks = [
                    asyncio.create_task(clients[1].solve(HOLE8, timeout=0.05))
                    for _ in range(2)
                ]
                flood_tasks = []
                for c, client in enumerate(clients):
                    for r in range(REQUESTS_PER_CONNECTION):
                        clauses, _ = FLOOD[(c * REQUESTS_PER_CONNECTION + r) % len(FLOOD)]
                        flood_tasks.append(
                            asyncio.create_task(client.solve(clauses, timeout=15.0))
                        )
                everything = victim_tasks + probe_tasks + flood_tasks
                replies = await asyncio.wait_for(
                    asyncio.gather(*everything), timeout=300.0
                )
            finally:
                for client in clients:
                    await client.close()
        finally:
            await server.shutdown()
        return replies, service

    replies, service = asyncio.run(scenario())
    victims = replies[: len(VICTIMS)]
    probes = replies[len(VICTIMS) : len(VICTIMS) + 2]
    flood = replies[len(VICTIMS) + 2 :]
    expected = [truth for _, truth in VICTIMS] + [None, None] + [
        FLOOD[(c * REQUESTS_PER_CONNECTION + r) % len(FLOOD)][1]
        for c in range(CONNECTIONS)
        for r in range(REQUESTS_PER_CONNECTION)
    ]

    # Every request got exactly one reply, and ≥500 were in flight.
    assert len(replies) == len(VICTIMS) + 2 + CONNECTIONS * REQUESTS_PER_CONNECTION
    assert len(replies) >= 500

    # No hangs happened (gather returned) and every reply is one of the
    # contract's explicit outcomes.
    kinds = {reply["kind"] for reply in replies}
    assert kinds <= {"result", "busy", "deadline"}, kinds

    # Zero wrong answers: every definite result matches ground truth
    # and carries its verification witness; every UNKNOWN is truthful.
    wrong = []
    for reply, truth in zip(replies, expected):
        if reply["kind"] != "result":
            continue
        if reply["status"] == "UNKNOWN":
            if not reply.get("limit_reason"):
                wrong.append(reply)
        else:
            if truth is not None and reply["status"] != truth:
                wrong.append(reply)
            if reply["verified"] is None:
                wrong.append(reply)
    assert not wrong, wrong[:5]

    # The probes' deadlines were honored with explicit refusals.
    assert all(probe["kind"] == "deadline" for probe in probes), probes

    # The fault plan really did kill workers, and the pool healed:
    # every victim recovered to its true answer on a clean retry.
    assert service.pool.retries >= 3, service.pool.stats if hasattr(service.pool, "stats") else service.pool.retries
    for reply, (_, truth) in zip(victims, VICTIMS):
        assert reply["kind"] == "result" and reply["status"] == truth, reply
        assert reply["verified"] is not None

    # The long-running server does not leak: every finalized job left
    # the pool's index, and no disconnected client's admission state
    # survived its final release.
    assert service.pool.jobs == {}
    assert service.admission.summary()["clients"] == 0

    # Observability held under fire: every reply is attributable to a
    # *complete* span tree (admission -> reply, every span closed), and
    # no request was left open after its reply went out.
    spans = service.ops.spans
    assert spans.open_count == 0, spans.open_requests()
    trees = list(spans.completed)
    assert len(trees) == len(replies)
    assert all(tree["complete"] for tree in trees), [
        tree["request_id"] for tree in trees if not tree["complete"]
    ][:5]
    assert {tree["reply_kind"] for tree in trees} <= {"result", "busy", "deadline"}
    assert all(tree["op"] == "solve" for tree in trees)
    # The faulted victims show up as multi-attempt trees: the retries
    # the pool performed are visible per-request, not just as a counter.
    retried = [tree for tree in trees if tree["attempts"] >= 2]
    assert len(retried) >= 3, [tree["attempts"] for tree in trees[:8]]
    # The scrape survives the same load and reports real percentiles.
    from repro.server.ops import prometheus_text

    scrape = prometheus_text(service)
    assert 'reprosat_phase_latency_seconds{phase="solve",quantile="0.99"}' in scrape
    assert 'reprosat_replies_total{kind="result"}' in scrape

    # No orphaned worker processes survive shutdown.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
