"""Admission control: queue bound, per-client cap, token bucket."""

import pytest

from repro.server.admission import (
    REASON_CLIENT_CAP,
    REASON_CLIENT_RATE,
    REASON_QUEUE_FULL,
    AdmissionController,
)


def test_admits_until_the_global_queue_bound():
    admission = AdmissionController(max_queue=3, per_client=10)
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") is None
    assert admission.try_admit("b") is None
    assert admission.try_admit("b") == REASON_QUEUE_FULL
    admission.release("a")
    assert admission.try_admit("b") is None
    assert admission.summary()["refused"] == {REASON_QUEUE_FULL: 1}


def test_one_client_cannot_monopolize_the_pool():
    admission = AdmissionController(max_queue=100, per_client=2)
    assert admission.try_admit("greedy") is None
    assert admission.try_admit("greedy") is None
    assert admission.try_admit("greedy") == REASON_CLIENT_CAP
    # Other clients still get in.
    assert admission.try_admit("polite") is None


def test_token_bucket_limits_sustained_rate():
    admission = AdmissionController(
        max_queue=100, per_client=100, burst=2, refill_per_second=1.0
    )
    now = 1000.0
    assert admission.try_admit("c", now) is None
    admission.release("c")
    assert admission.try_admit("c", now) is None
    admission.release("c")
    assert admission.try_admit("c", now) == REASON_CLIENT_RATE
    # Half a second refills half a token — still refused.
    assert admission.try_admit("c", now + 0.5) == REASON_CLIENT_RATE
    # A full second refills a full token.
    assert admission.try_admit("c", now + 1.5) is None


def test_release_without_admit_is_a_bug_not_a_shrug():
    admission = AdmissionController()
    with pytest.raises(RuntimeError):
        admission.release("ghost")


def test_forget_drops_only_idle_clients():
    admission = AdmissionController()
    assert admission.try_admit("a") is None
    admission.forget("a")  # in flight: kept
    assert admission.summary()["clients"] == 1
    admission.release("a")
    assert admission.summary()["clients"] == 0


def test_forget_mid_flight_drops_state_on_the_final_release():
    # A client that disconnects mid-solve is forgotten exactly when its
    # last in-flight job releases — never leaked, never dropped early
    # (the release accounting still needs the state).
    admission = AdmissionController()
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") is None
    admission.forget("a")
    assert admission.summary()["clients"] == 1
    admission.release("a")
    assert admission.summary()["clients"] == 1
    admission.release("a")
    assert admission.summary()["clients"] == 0
    assert admission.in_flight == 0
