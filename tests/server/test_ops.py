"""The ops plane: metrics op, scrape, stats extension, spans under faults."""

import time

from repro.cli import build_parser
from repro.generators import pigeonhole_formula
from repro.observability import FleetRecorder, IdMinter, RingBufferSink
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.retry import RetryPolicy
from repro.server.ops import (
    ServiceDashboardAdapter,
    ServiceOps,
    prometheus_text,
)
from repro.server.protocol import Request
from repro.server.service import SolverService
from repro.solver.config import VERIFY_FULL, config_by_name

HOLE6 = [list(clause) for clause in pigeonhole_formula(6).clauses]


def drive(service, request, client="tester", budget_seconds=120.0):
    """handle() one request and tick until its reply arrives."""
    replies: list = []
    service.handle(request, client, replies.append)
    deadline = time.monotonic() + budget_seconds
    while not replies and time.monotonic() < deadline:
        service.tick()
        time.sleep(0.01)
    assert replies, "request never answered"
    return replies[0]


# ----------------------------------------------------------------------
# ServiceOps unit behavior
# ----------------------------------------------------------------------
def test_ops_counts_requests_and_settles_slo():
    ops = ServiceOps(latency_objective=10.0, minter=IdMinter(token="aa0000"))
    rid = ops.begin_request("solve", "c")
    tree = ops.finish_request(rid, "result", reply_seconds=0.001)
    assert tree is not None and tree["reply_kind"] == "result"
    assert ops.registry.counter("requests_solve").value == 1
    assert ops.registry.counter("replies_result").value == 1
    slo = ops.slo()
    assert slo == {
        "objective_seconds": 10.0,
        "requests": 1,
        "within_objective": 1,
        "burn_ratio": 0.0,
    }
    assert ops.finish_request(None, "error") is None  # untracked: no-op


def test_ops_burns_budget_on_slow_requests():
    clock_value = [0.0]
    ops = ServiceOps(latency_objective=0.5)
    ops.spans.clock = lambda: clock_value[0]
    rid = ops.begin_request("solve", "c")
    clock_value[0] = 2.0  # the request took 2s against a 0.5s objective
    ops.finish_request(rid, "result")
    assert ops.slo()["burn_ratio"] == 1.0
    assert ops.latency()["request"]["count"] == 1


def test_ops_rejects_nonpositive_objective():
    try:
        ServiceOps(latency_objective=0.0)
    except ValueError:
        pass
    else:
        raise AssertionError("objective 0 must be rejected")


# ----------------------------------------------------------------------
# The metrics op and the scrape
# ----------------------------------------------------------------------
def test_metrics_op_serves_a_prometheus_scrape():
    service = SolverService(pool_size=1, config=config_by_name("berkmin", seed=3))
    try:
        reply = drive(service, Request(op="solve", request_id=1, clauses=[[1]]))
        assert reply["kind"] == "result" and reply["status"] == "SAT"
        metrics_reply = drive(service, Request(op="metrics", request_id=2))
    finally:
        service.close()

    assert metrics_reply["kind"] == "metrics"
    body = metrics_reply["metrics"]
    assert isinstance(body, str) and body.endswith("\n")
    # Counters, by op and by kind.
    assert 'reprosat_requests_total{op="solve"} 1' in body
    assert 'reprosat_replies_total{kind="result"} 1' in body
    # Every observed phase exposes p50/p90/p99.
    for phase in ("validate", "admit", "queue", "solve", "reply", "request"):
        for quantile in ("0.5", "0.9", "0.99"):
            assert (
                f'reprosat_phase_latency_seconds{{phase="{phase}",'
                f'quantile="{quantile}"}}' in body
            ), (phase, quantile)
    # Gauges from the defense layers and the pool.
    assert "reprosat_pool_size 1" in body
    assert "reprosat_admission_in_flight 0" in body
    assert "reprosat_breaker_quarantined 0" in body
    assert "reprosat_cache_entries 1" in body
    assert "reprosat_slo_objective_seconds 1.0" in body
    # HELP/TYPE headers precede samples (text exposition format).
    assert body.index("# HELP reprosat_requests_total") < body.index(
        'reprosat_requests_total{op="solve"}'
    )


def test_stats_op_carries_spans_latency_and_slo_sections():
    service = SolverService(pool_size=1, config=config_by_name("berkmin", seed=3))
    try:
        drive(service, Request(op="solve", request_id=1, clauses=[[2]]))
        reply = drive(service, Request(op="stats", request_id=2))
    finally:
        service.close()
    stats = reply["stats"]
    # The stats request itself is still open while its payload is built
    # — the honest answer, and exactly what the `top` view wants.
    assert stats["spans"]["open"] == 1
    assert stats["spans"]["completed"] >= 1
    assert [row["op"] for row in stats["spans"]["slowest_open"]] == ["stats"]
    assert stats["slo"]["requests"] >= 1
    assert stats["latency"]["solve"]["count"] == 1
    assert stats["latency"]["request"]["p50"] is not None


# ----------------------------------------------------------------------
# Span propagation across the retry + warm-resume seam
# ----------------------------------------------------------------------
def test_request_id_survives_sigkill_retry_and_warm_resume(tmp_path):
    sink = RingBufferSink(capacity=65536)
    service = SolverService(
        pool_size=1,
        config=config_by_name("berkmin", seed=7),
        verification=VERIFY_FULL,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        stall_seconds=10.0,
        checkpoint_dir=str(tmp_path),
        checkpoint_interval=50,
        fault_plan=FaultPlan(
            specs=(
                FaultSpec(mode="signal", worker=0, attempt=0, after_conflicts=100),
            )
        ),
        trace=sink,
    )
    try:
        reply = drive(service, Request(op="solve", request_id=1, clauses=HOLE6))
    finally:
        service.close()

    # The request recovered to its true, verified answer.
    assert reply["kind"] == "result" and reply["status"] == "UNSAT", reply
    assert reply["attempts"] == 2

    spans = service.ops.spans
    assert spans.open_count == 0
    tree = spans.completed[-1]
    rid = tree["request_id"]

    # One tree, same request_id, one attempt span per launch.
    assert tree["complete"] is True
    assert tree["attempts"] == 2
    attempt_spans = [
        span for span in tree["spans"] if span["name"].startswith("solve-attempt-")
    ]
    assert [span["name"] for span in attempt_spans] == [
        "solve-attempt-0", "solve-attempt-1",
    ]
    first, second = attempt_spans
    # The killed attempt closed with the fault as its status.
    assert "crashed" in (first["status"] or ""), first
    # The relaunch warm-resumed from the checkpoint, and the final
    # conflict total is monotone across the seam.
    resumed = second["meta"]["resumed_from_conflicts"]
    assert resumed > 0
    assert second["meta"]["conflicts"] >= resumed
    assert second["status"] == "ok"
    # Verification time was attributed to the request as its own phase.
    assert tree["phases"].get("verify", 0) > 0

    # The supervision events on the trace bus carry the same
    # correlation ID as the span tree.
    retries = [e for e in sink.events if e["type"] == "worker_retry"]
    assert retries and all(e.get("request_id") == rid for e in retries)
    faults = [e for e in sink.events if e["type"] == "worker_fault"]
    assert faults and all(e.get("request_id") == rid for e in faults)


# ----------------------------------------------------------------------
# Dashboard adapter: unbounded job ids onto fixed slots
# ----------------------------------------------------------------------
def test_dashboard_adapter_leases_and_frees_slots():
    recorder = FleetRecorder()
    adapter = ServiceDashboardAdapter(recorder, slots=2)
    assert recorder.count == 2  # fleet_started fired at construction

    adapter.lane_state(10, "running")
    adapter.lane_state(11, "running")
    adapter.lane_state(12, "running")  # no free slot: silently unmapped
    adapter.lane_telemetry(10, {"conflicts": 5})
    adapter.lane_telemetry(12, {"conflicts": 9})  # unmapped: dropped
    adapter.lane_state(10, "done")
    adapter.lane_state(13, "running")  # reuses the freed slot 0
    adapter.fleet_finished("summary")
    adapter.close()

    slots = [lane for lane, _, _, _ in recorder.transitions]
    assert slots == [0, 1, 0, 0]  # job 10->0, 11->1, 10 done, 13->0
    assert recorder.telemetry == [(0, {"conflicts": 5})]
    assert recorder.summary == "summary"
    assert recorder.closed


def test_dashboard_adapter_rejects_zero_slots():
    try:
        ServiceDashboardAdapter(FleetRecorder(), slots=0)
    except ValueError:
        pass
    else:
        raise AssertionError("0 slots must be rejected")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_serve_parser_accepts_dashboard_and_latency_objective():
    args = build_parser().parse_args(
        ["serve", "--dashboard", "--latency-objective", "0.5"]
    )
    assert args.dashboard is True
    assert args.latency_objective == 0.5


def test_top_and_trace_export_parsers():
    args = build_parser().parse_args(["top", "--once", "--port", "1234"])
    assert args.once and args.port == 1234
    args = build_parser().parse_args(
        ["trace-export", "t.jsonl", "-o", "out.json", "--request", "req-aa-000001"]
    )
    assert args.file == "t.jsonl" and args.out == "out.json"
    assert args.request == "req-aa-000001"
    args = build_parser().parse_args(["trace-summary", "t.jsonl", "--service"])
    assert args.service is True


def test_service_monitor_sees_job_states_through_the_adapter():
    # What `repro-sat serve --dashboard` wires up: the pool's unbounded
    # job ids reach a fixed-slot fleet monitor through the adapter.
    recorder = FleetRecorder()
    service = SolverService(
        pool_size=1,
        config=config_by_name("berkmin", seed=3),
        monitor=ServiceDashboardAdapter(recorder, slots=1),
    )
    try:
        drive(service, Request(op="solve", request_id=1, clauses=[[5]]))
        drive(service, Request(op="solve", request_id=2, clauses=[[6]]))
    finally:
        service.close()
    assert recorder.count == 1  # one slot, started at construction
    # Both jobs ran through slot 0: running -> done, twice.
    assert recorder.states_of(0) == ["running", "done", "running", "done"]
