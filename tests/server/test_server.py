"""End-to-end service tests: asyncio server + client over a real socket."""

import asyncio

import pytest

from repro.server.admission import REASON_QUEUE_FULL, AdmissionController
from repro.server.client import AsyncSolverClient, SolverClient
from repro.server.server import SolverServer
from repro.server.service import REASON_DRAINING, SolverService
from repro.solver.config import VERIFY_FULL, config_by_name

SAT_CLAUSES = [[1, 2], [-1, 2], [1, -2]]
UNSAT_CLAUSES = [[1, 2], [-1, 2], [1, -2], [-1, -2]]


def _hole(holes):
    from repro.generators import pigeonhole_formula

    return [list(clause) for clause in pigeonhole_formula(holes).clauses]


def run(coroutine):
    return asyncio.run(coroutine)


def make_service(**kwargs):
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("config", config_by_name("berkmin", seed=11))
    kwargs.setdefault("verification", VERIFY_FULL)
    kwargs.setdefault("retry", 1)
    return SolverService(**kwargs)


async def serve(service, **kwargs):
    server = SolverServer(service, **kwargs)
    await server.start()
    return server


def test_concurrent_solves_get_correct_verified_answers():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                replies = await asyncio.wait_for(
                    asyncio.gather(
                        client.solve(SAT_CLAUSES, timeout=10.0),
                        client.solve(UNSAT_CLAUSES, timeout=10.0),
                        client.ping(),
                    ),
                    timeout=60.0,
                )
        finally:
            await server.shutdown()
        return replies

    sat, unsat, pong = run(scenario())
    assert sat["kind"] == "result" and sat["status"] == "SAT"
    assert sat["verified"] is not None
    assert unsat["kind"] == "result" and unsat["status"] == "UNSAT"
    assert unsat["verified"] is not None
    assert pong["kind"] == "pong"


def test_repeat_request_is_answered_from_the_cache():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                first = await asyncio.wait_for(
                    client.solve(UNSAT_CLAUSES, timeout=10.0), timeout=60.0
                )
                second = await asyncio.wait_for(
                    client.solve(UNSAT_CLAUSES, timeout=10.0), timeout=60.0
                )
        finally:
            await server.shutdown()
        return first, second, service.cache.summary()

    first, second, cache = run(scenario())
    assert first["kind"] == "result" and first["cached"] is None
    assert second["kind"] == "result" and second["cached"] == "exact"
    assert second["status"] == "UNSAT"
    assert cache["hits"] >= 1


def test_overload_is_an_explicit_busy_not_a_hang():
    async def scenario():
        service = make_service(
            pool_size=1,
            admission=AdmissionController(max_queue=1, per_client=8),
        )
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                slow = asyncio.create_task(client.solve(_hole(8), timeout=2.0))
                await asyncio.sleep(0.2)  # the slow job owns the one slot
                shed = await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, timeout=5.0), timeout=30.0
                )
                slow_reply = await asyncio.wait_for(slow, timeout=30.0)
        finally:
            await server.shutdown()
        return shed, slow_reply

    shed, slow_reply = run(scenario())
    assert shed["kind"] == "busy" and shed["reason"] == REASON_QUEUE_FULL
    assert slow_reply["kind"] in ("result", "deadline")


def test_expired_deadline_is_an_explicit_deadline_reply():
    async def scenario():
        service = make_service(pool_size=1)
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                reply = await asyncio.wait_for(
                    client.solve(_hole(9), timeout=0.05), timeout=60.0
                )
        finally:
            await server.shutdown()
        return reply

    reply = run(scenario())
    assert reply["kind"] == "deadline"
    assert reply["reason"] in ("time budget", "deadline expired")


def test_bad_requests_get_error_replies_not_disconnects():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            garbage_reply = await asyncio.wait_for(reader.readline(), timeout=10.0)
            async with AsyncSolverClient(port=server.port) as client:
                unknown_config = await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, config="frobnicate"), timeout=10.0
                )
                still_alive = await asyncio.wait_for(client.ping(), timeout=10.0)
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()
        return garbage_reply, unknown_config, still_alive

    garbage_reply, unknown_config, still_alive = run(scenario())
    import json

    assert json.loads(garbage_reply)["kind"] == "error"
    assert unknown_config["kind"] == "error"
    assert "frobnicate" in unknown_config["error"]
    assert still_alive["kind"] == "pong"


def test_stats_op_reports_service_health():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, timeout=10.0), timeout=60.0
                )
                stats = await asyncio.wait_for(client.stats(), timeout=10.0)
        finally:
            await server.shutdown()
        return stats

    stats = run(scenario())
    assert stats["kind"] == "stats"
    payload = stats["stats"]
    assert payload["pool"]["size"] == 2
    assert payload["replies"].get("result", 0) >= 1
    assert payload["requests"] >= 2


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "repro.sock")

    async def scenario():
        service = make_service()
        server = await serve(service, unix_path=path)
        try:
            async with AsyncSolverClient(unix_path=path) as client:
                reply = await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, timeout=10.0), timeout=60.0
                )
        finally:
            await server.shutdown()
        return reply

    reply = run(scenario())
    assert reply["kind"] == "result" and reply["status"] == "SAT"


def test_graceful_drain_answers_everything_before_exit():
    async def scenario():
        service = make_service(pool_size=1)
        server = await serve(service, drain_grace=0.5)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                slow = asyncio.create_task(client.solve(_hole(9), timeout=20.0))
                await asyncio.sleep(0.3)  # the slow solve is mid-search
                server.request_stop()
                # The drain must still answer the in-flight request.
                shutdown = asyncio.create_task(server.shutdown())
                slow_reply = await asyncio.wait_for(slow, timeout=30.0)
                await asyncio.wait_for(shutdown, timeout=30.0)
        finally:
            service.close()
        return slow_reply, service.draining

    slow_reply, draining = run(scenario())
    # Cooperative cancel: the in-flight search answers honestly.
    assert slow_reply["kind"] in ("result", "deadline")
    if slow_reply["kind"] == "result":
        assert slow_reply["status"] in ("UNSAT", "UNKNOWN")
    assert draining


def test_draining_service_refuses_new_solves():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                service.draining = True
                reply = await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, timeout=5.0), timeout=10.0
                )
        finally:
            await server.shutdown()
        return reply

    reply = run(scenario())
    assert reply["kind"] == "busy" and reply["reason"] == REASON_DRAINING


def test_cache_hit_does_not_consume_the_half_open_breaker_trial():
    from repro.checkpoint.snapshot import canonical_fingerprint
    from repro.cnf.formula import CnfFormula
    from repro.server.breaker import CircuitBreaker
    from repro.server.protocol import Request
    from repro.solver.result import SolveResult, SolveStatus

    breaker = CircuitBreaker(threshold=1, cooldown_seconds=0.0)
    service = make_service(pool_size=1, breaker=breaker)
    try:
        fingerprint = canonical_fingerprint(CnfFormula(SAT_CLAUSES).clauses)
        service.cache.store(
            fingerprint,
            (),
            SolveResult(status=SolveStatus.SAT, model={1: True, 2: True}),
        )
        breaker.record_failure(fingerprint)  # open; cooldown 0 => half-open
        sent = []
        service.handle(
            Request(op="solve", request_id="r1", clauses=SAT_CLAUSES),
            "client-1",
            sent.append,
        )
        assert sent and sent[0]["kind"] == "result" and sent[0]["cached"] == "exact"
        # The cached reply resolved without touching the breaker: the
        # single half-open trial is still available to a real request.
        assert breaker.allows(fingerprint)
    finally:
        service.close()


def test_pump_survives_a_tick_exception():
    async def scenario():
        service = make_service()
        server = await serve(service)
        original_tick = service.tick
        failures = {"count": 0}

        def bad_tick():
            if failures["count"] < 3:
                failures["count"] += 1
                raise RuntimeError("injected tick failure")
            return original_tick()

        service.tick = bad_tick
        try:
            async with AsyncSolverClient(port=server.port) as client:
                reply = await asyncio.wait_for(
                    client.solve(SAT_CLAUSES, timeout=10.0), timeout=60.0
                )
        finally:
            service.tick = original_tick
            await server.shutdown()
        return reply, server.pump_errors

    reply, pump_errors = run(scenario())
    # The pump swallowed the injected failures and kept driving the
    # pool: the solve still got its reply instead of hanging forever.
    assert reply["kind"] == "result" and reply["status"] == "SAT"
    assert pump_errors >= 1


def test_blocking_client_roundtrip():
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            reply = await asyncio.to_thread(blocking_solve, server.port)
        finally:
            await server.shutdown()
        return reply

    def blocking_solve(port):
        with SolverClient(port=port) as client:
            return client.solve(UNSAT_CLAUSES, timeout=10.0)

    reply = run(scenario())
    assert reply["kind"] == "result" and reply["status"] == "UNSAT"


def test_metrics_op_over_the_wire_and_top_cli(capsys):
    async def scenario():
        service = make_service()
        server = await serve(service)
        try:
            async with AsyncSolverClient(port=server.port) as client:
                reply = await client.solve(SAT_CLAUSES)
                assert reply["kind"] == "result"
                metrics = await client.metrics()
                blocking = await asyncio.to_thread(top_roundtrip, server.port)
        finally:
            await server.shutdown()
        return metrics, blocking

    def top_roundtrip(port):
        from repro.cli import main

        metrics_reply = SolverClient(port=port).metrics()
        code = main(["top", "--once", "--port", str(port)])
        return metrics_reply, code

    metrics, (blocking_metrics, top_code) = run(scenario())
    assert metrics["kind"] == "metrics"
    body = metrics["metrics"]
    assert 'reprosat_requests_total{op="solve"} 1' in body
    assert 'reprosat_phase_latency_seconds{phase="solve",quantile="0.99"}' in body
    # The blocking client sees the same scrape surface.
    assert blocking_metrics["kind"] == "metrics"
    assert "reprosat_pool_size 2" in blocking_metrics["metrics"]
    # `repro-sat top --once` polled the live service and exited cleanly.
    assert top_code == 0
    err = capsys.readouterr().err
    assert "top: " in err and "requests" in err


def test_top_against_no_server_is_one_line_error(capsys):
    from repro.cli import main

    code = main(["top", "--once", "--port", "1"])  # nothing listens there
    assert code == 2
    assert "repro-sat: error:" in capsys.readouterr().err
