"""Circuit breaker: open on repeated worker deaths, half-open trial, close."""

from repro.server.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)

FP = "fingerprint-a"


def test_closed_until_threshold_failures_in_window():
    breaker = CircuitBreaker(threshold=3, window_seconds=60.0)
    now = 100.0
    assert breaker.allows(FP, now)
    assert breaker.record_failure(FP, now) == STATE_CLOSED
    assert breaker.record_failure(FP, now + 1) == STATE_CLOSED
    assert breaker.allows(FP, now + 1)
    assert breaker.record_failure(FP, now + 2) == STATE_OPEN
    assert not breaker.allows(FP, now + 3)
    assert breaker.summary()["opens"] == 1
    assert breaker.open_fingerprints() == [FP]


def test_old_failures_age_out_of_the_window():
    breaker = CircuitBreaker(threshold=3, window_seconds=10.0)
    now = 100.0
    breaker.record_failure(FP, now)
    breaker.record_failure(FP, now + 1)
    # The first two fall out of the window before the third arrives.
    assert breaker.record_failure(FP, now + 20) == STATE_CLOSED
    assert breaker.allows(FP, now + 20)


def test_half_open_admits_exactly_one_trial():
    breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0)
    now = 100.0
    assert breaker.record_failure(FP, now) == STATE_OPEN
    assert not breaker.allows(FP, now + 1)
    assert breaker.state(FP, now + 6) == STATE_HALF_OPEN
    assert breaker.allows(FP, now + 6)  # the trial
    assert not breaker.allows(FP, now + 6)  # everyone else waits
    refusals = breaker.summary()["refusals"]
    assert refusals >= 2


def test_trial_success_closes_and_forgives():
    breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0)
    now = 100.0
    breaker.record_failure(FP, now)
    assert breaker.allows(FP, now + 6)
    breaker.record_success(FP)
    assert breaker.state(FP, now + 7) == STATE_CLOSED
    assert breaker.allows(FP, now + 7)
    assert breaker.open_fingerprints() == []


def test_trial_failure_reopens_for_another_cooldown():
    breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0)
    now = 100.0
    breaker.record_failure(FP, now)
    assert breaker.allows(FP, now + 6)  # trial admitted
    assert breaker.record_failure(FP, now + 7) == STATE_OPEN
    assert not breaker.allows(FP, now + 8)
    # The new cooldown starts at the trial failure, not the first open.
    assert breaker.state(FP, now + 11.5) == STATE_OPEN
    assert breaker.state(FP, now + 12.5) == STATE_HALF_OPEN


def test_fingerprints_are_independent():
    breaker = CircuitBreaker(threshold=1)
    now = 100.0
    breaker.record_failure("bad", now)
    assert not breaker.allows("bad", now + 1)
    assert breaker.allows("good", now + 1)
