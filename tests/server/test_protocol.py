"""Wire protocol: request parsing and reply construction."""

import json

import pytest

from repro.server.protocol import (
    ProtocolError,
    encode_reply,
    error_reply,
    parse_request,
    refusal_reply,
    result_reply,
    stored_to_result,
)
from repro.solver.result import AttemptRecord, SolveResult, SolveStatus


def test_parse_solve_request_roundtrips_all_fields():
    line = json.dumps(
        {
            "op": "solve",
            "id": 7,
            "clauses": [[1, 2], [-1, 2]],
            "assumptions": [2],
            "timeout": 5.0,
            "max_conflicts": 1000,
            "config": "berkmin",
        }
    )
    request = parse_request(line)
    assert request.op == "solve"
    assert request.request_id == 7
    assert request.clauses == [[1, 2], [-1, 2]]
    assert request.assumptions == (2,)
    assert request.timeout == 5.0
    assert request.max_conflicts == 1000
    assert request.config == "berkmin"


def test_parse_request_accepts_bytes_lines():
    request = parse_request(b'{"op": "ping", "id": "a"}\n')
    assert request.op == "ping" and request.request_id == "a"


@pytest.mark.parametrize(
    "payload",
    [
        "not json",
        "[1, 2]",  # not an object
        '{"op": "frobnicate", "id": 1}',
        '{"op": "solve", "id": [1]}',  # non-scalar id
        '{"op": "solve", "id": 1}',  # missing clauses
        '{"op": "solve", "id": 1, "clauses": [[0]]}',  # zero literal
        '{"op": "solve", "id": 1, "clauses": [[true]]}',  # bool literal
        '{"op": "solve", "id": 1, "clauses": [], "timeout": -1}',
        '{"op": "solve", "id": 1, "clauses": [], "timeout": true}',
        '{"op": "solve", "id": 1, "clauses": [], "max_conflicts": 0}',
        '{"op": "solve", "id": 1, "clauses": [], "config": 3}',
        '{"op": "solve", "id": 1, "clauses": [], "surprise": 1}',  # unknown field
    ],
)
def test_parse_request_rejects_malformed_lines(payload):
    with pytest.raises(ProtocolError):
        parse_request(payload)


def test_protocol_errors_never_echo_payload():
    with pytest.raises(ProtocolError) as excinfo:
        parse_request('{"op": "solve", "id": 1, "clauses": [["secret-literal"]]}')
    assert "secret-literal" not in str(excinfo.value)


def test_result_reply_sat_carries_sorted_dimacs_model():
    result = SolveResult(
        status=SolveStatus.SAT, model={2: False, 1: True}, verified="model"
    )
    reply = result_reply(5, result, cached="exact")
    assert reply["kind"] == "result"
    assert reply["status"] == "SAT"
    assert reply["model"] == [-2, 1]
    assert reply["verified"] == "model"
    assert reply["cached"] == "exact"
    assert "limit_reason" not in reply


def test_result_reply_unknown_is_truthful_about_degradation():
    failed = AttemptRecord(
        attempt=0, config_name="berkmin", seed=1, outcome="worker crashed"
    )
    result = SolveResult(
        status=SolveStatus.UNKNOWN,
        limit_reason="worker crashed",
        attempts=[failed],
    )
    reply = result_reply(1, result)
    assert reply["status"] == "UNKNOWN"
    assert reply["limit_reason"] == "worker crashed"
    assert reply["degraded"] == "worker crashed after 1 attempt"


def test_refusal_reply_validates_kind():
    assert refusal_reply(1, "busy", "queue full")["kind"] == "busy"
    assert refusal_reply(1, "deadline", "time budget")["kind"] == "deadline"
    with pytest.raises(ValueError):
        refusal_reply(1, "result", "nope")


def test_encode_reply_is_one_json_line():
    blob = encode_reply(error_reply(None, "bad"))
    assert blob.endswith(b"\n") and blob.count(b"\n") == 1
    assert json.loads(blob)["kind"] == "error"


def test_stored_to_result_rehydrates_cache_hits():
    stored = {
        "status": SolveStatus.UNSAT,
        "core": [2, 3],
        "under_assumptions": True,
        "verified": "proof",
    }
    result = stored_to_result("exact", stored)
    assert result.status is SolveStatus.UNSAT
    assert result.core == [2, 3]
    assert result.under_assumptions
    assert result.verified == "proof"
