"""JobPool: streaming supervision, deadlines, retries, drain."""

import time

import pytest

from repro.cnf.formula import CnfFormula
from repro.generators import pigeonhole_formula
from repro.parallel.pool import DEADLINE_EXPIRED, Job, JobPool
from repro.parallel.worker import strip_for_worker
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.retry import RetryPolicy
from repro.solver.config import VERIFY_FULL, config_by_name
from repro.solver.result import SolveStatus

SAT_FORMULA = CnfFormula([[1, 2], [-1, 2]])
UNSAT_FORMULA = CnfFormula([[1], [-1]])


def worker_config(seed: int = 7):
    return strip_for_worker(config_by_name("berkmin", seed=seed), VERIFY_FULL)


def run_until_idle(pool: JobPool, timeout: float = 60.0) -> list[Job]:
    finished: list[Job] = []
    stop = time.monotonic() + timeout
    while not pool.idle:
        assert time.monotonic() < stop, "pool did not converge"
        finished.extend(pool.poll())
    return finished


@pytest.fixture
def pool_factory():
    pools: list[JobPool] = []

    def make(**kwargs):
        kwargs.setdefault("verification", VERIFY_FULL)
        pool = JobPool(kwargs.pop("size", 2), **kwargs)
        pools.append(pool)
        return pool

    yield make
    for pool in pools:
        pool.close()


def test_submits_stream_to_verified_results(pool_factory):
    pool = pool_factory(size=2)
    done_order: list[int] = []
    jobs = [
        Job(job_id=0, formula=SAT_FORMULA, config=worker_config(),
            on_done=lambda job: done_order.append(job.job_id)),
        Job(job_id=1, formula=UNSAT_FORMULA, config=worker_config(),
            on_done=lambda job: done_order.append(job.job_id)),
    ]
    for job in jobs:
        pool.submit(job)
    assert pool.load == 2
    run_until_idle(pool)
    assert sorted(done_order) == [0, 1]
    assert jobs[0].result.status is SolveStatus.SAT
    assert jobs[0].result.verified is not None
    assert jobs[1].result.status is SolveStatus.UNSAT
    assert jobs[1].result.verified is not None
    assert pool.retries == 0


def test_queued_deadline_expires_without_launching(pool_factory):
    pool = pool_factory(size=1)
    job = Job(
        job_id=0, formula=SAT_FORMULA, config=worker_config(),
        deadline=time.monotonic() - 1.0,
    )
    pool.submit(job)
    run_until_idle(pool)
    assert job.result.status is SolveStatus.UNKNOWN
    assert job.result.limit_reason == DEADLINE_EXPIRED
    assert job.attempts == 0  # cancelled, never launched


def test_budget_kill_is_an_honest_unknown(pool_factory):
    pool = pool_factory(size=1)
    job = Job(
        job_id=0, formula=pigeonhole_formula(9), config=worker_config(),
        budget=0.2,
    )
    pool.submit(job)
    run_until_idle(pool)
    assert job.result.status is SolveStatus.UNKNOWN
    assert job.result.limit_reason == "time budget"
    assert job.attempts == 1  # a blown budget is not retried


def test_crashed_worker_is_recycled_and_retried(pool_factory):
    faults: list[tuple[int, str, bool]] = []
    pool = pool_factory(
        size=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        fault_plan=FaultPlan.single("crash", worker=0, attempt=0),
        on_fault=lambda job, reason, retrying: faults.append(
            (job.job_id, reason, retrying)
        ),
    )
    job = Job(job_id=0, formula=SAT_FORMULA, config=worker_config())
    pool.submit(job)
    run_until_idle(pool)
    assert job.result.status is SolveStatus.SAT
    assert job.result.verified is not None
    assert pool.retries == 1
    assert [record.outcome for record in job.history][-1] == "ok"
    assert faults == [(0, job.history[0].outcome, True)]


def test_stalled_worker_is_terminated_by_the_heartbeat_watchdog(pool_factory):
    pool = pool_factory(
        size=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        stall_seconds=0.5,
        fault_plan=FaultPlan.single("stall", worker=0, attempt=0, seconds=30.0),
    )
    job = Job(job_id=0, formula=SAT_FORMULA, config=worker_config())
    pool.submit(job)
    run_until_idle(pool)
    assert job.result.status is SolveStatus.SAT
    assert job.history[0].outcome == "stalled (no heartbeat)"
    assert pool.retries == 1


def test_exhausted_retries_degrade_truthfully(pool_factory):
    pool = pool_factory(
        size=1,
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
        fault_plan=FaultPlan(
            specs=(
                FaultSpec(mode="crash", worker=0, attempt=0),
                FaultSpec(mode="crash", worker=0, attempt=1),
            )
        ),
    )
    job = Job(job_id=0, formula=SAT_FORMULA, config=worker_config())
    pool.submit(job)
    run_until_idle(pool)
    assert job.result.status is SolveStatus.UNKNOWN
    assert job.result.degraded
    assert job.attempts == 2


def test_drain_finalizes_everything_and_refuses_new_work(pool_factory):
    pool = pool_factory(size=1)
    slow = Job(job_id=0, formula=pigeonhole_formula(9), config=worker_config())
    queued = Job(job_id=1, formula=SAT_FORMULA, config=worker_config())
    pool.submit(slow)
    pool.submit(queued)
    pool.poll()  # launch the slow job into the only slot
    pool.drain(grace_seconds=0.1, cancel_seconds=1.5)
    assert slow.done and queued.done
    assert slow.result.status is SolveStatus.UNKNOWN
    with pytest.raises(RuntimeError):
        pool.submit(Job(job_id=2, formula=SAT_FORMULA, config=worker_config()))


def test_finalized_jobs_are_pruned_from_the_pool_index(pool_factory):
    # A long-running server streams an unbounded number of jobs through
    # one pool; retaining finalized Jobs (formula + history + reply
    # closure) would leak until OOM.
    pool = pool_factory(size=2)
    jobs = [
        Job(job_id=0, formula=SAT_FORMULA, config=worker_config()),
        Job(job_id=1, formula=UNSAT_FORMULA, config=worker_config()),
    ]
    for job in jobs:
        pool.submit(job)
    run_until_idle(pool)
    assert all(job.done for job in jobs)  # callers keep their references
    assert pool.jobs == {}
    assert pool._collected == {}


def test_saturated_pool_still_expires_queued_deadlines(pool_factory):
    pool = pool_factory(size=1)
    slow = Job(job_id=0, formula=pigeonhole_formula(9), config=worker_config())
    queued = Job(
        job_id=1, formula=SAT_FORMULA, config=worker_config(),
        deadline=time.monotonic() + 0.3,
    )
    pool.submit(slow)
    pool.submit(queued)
    pool.poll()  # the slow job owns the only slot
    stop = time.monotonic() + 30.0
    while not queued.done:
        assert time.monotonic() < stop, "queued deadline never expired"
        pool.poll()
    # The expiry fired while the pool was still saturated — the reply
    # must not wait for a slot to free up.
    assert 0 in pool.active
    assert queued.result.status is SolveStatus.UNKNOWN
    assert queued.result.limit_reason == DEADLINE_EXPIRED
    pool.shed("test over")


def test_duplicate_job_id_is_rejected(pool_factory):
    pool = pool_factory(size=1)
    pool.submit(Job(job_id=0, formula=SAT_FORMULA, config=worker_config()))
    with pytest.raises(ValueError):
        pool.submit(Job(job_id=0, formula=SAT_FORMULA, config=worker_config()))
    run_until_idle(pool)
