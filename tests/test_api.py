"""Public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_solve_accepts_clause_lists():
    result = repro.solve([[1, 2], [-1]])
    assert result.is_sat
    assert result.model[2] is True


def test_solve_accepts_formula_and_config():
    formula = repro.CnfFormula([[1], [-1]])
    result = repro.solve(formula, config=repro.chaff_config())
    assert result.is_unsat


def test_solve_forwards_limits():
    from repro.generators.pigeonhole import pigeonhole_formula

    result = repro.solve(pigeonhole_formula(7), max_conflicts=2)
    assert result.is_unknown


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_docstring_quickstart_runs():
    formula = repro.CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    result = repro.solve(formula)
    assert result.status is repro.SolveStatus.UNSAT
