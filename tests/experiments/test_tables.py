"""Table rendering."""

import pytest

from repro.experiments.tables import Table, format_ratio, format_seconds


def test_render_alignment_and_content():
    table = Table("Demo", ["a", "column"], notes=["hello"])
    table.add_row("x", 1)
    table.add_row("longer", 2.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1] == "===="
    assert "column" in lines[2]
    assert "longer" in text
    assert "note: hello" in text


def test_row_width_mismatch_rejected():
    table = Table("T", ["one"])
    with pytest.raises(ValueError):
        table.add_row("a", "b")


def test_str_is_render():
    table = Table("T", ["h"])
    table.add_row("v")
    assert str(table) == table.render()


def test_format_helpers():
    assert format_seconds(1.2345) == "1.23"
    assert format_ratio(3, 2) == "1.50"
    assert format_ratio(3, 0) == "inf"
    assert format_ratio(0, 0) == "1.00"
