"""Benchmark suites: every instance must have its advertised ground truth."""

import pytest

from repro.experiments.suites import (
    benchmark_class,
    competition_suite,
    paper_suite,
    skin_effect_instances,
)
from repro.experiments.paper_data import CLASS_ORDER
from repro.solver.solver import Solver


def test_paper_suite_covers_all_twelve_classes():
    names = [cls.name for cls in paper_suite("default")]
    assert names == CLASS_ORDER


def test_quick_suite_covers_all_twelve_classes():
    names = [cls.name for cls in paper_suite("quick")]
    assert names == CLASS_ORDER


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        paper_suite("huge")


def test_benchmark_class_lookup():
    assert benchmark_class("Hanoi", "quick").name == "Hanoi"
    with pytest.raises(KeyError):
        benchmark_class("Nope")


@pytest.mark.parametrize(
    "instance",
    [
        instance
        for cls in paper_suite("quick")
        for instance in cls.instances
    ],
    ids=lambda instance: instance.name,
)
def test_quick_instances_solve_to_expected_status(instance):
    """Ground truth check for every quick-suite instance."""
    result = Solver(instance.formula()).solve(max_conflicts=instance.max_conflicts)
    assert result.status is instance.expected


def test_quick_competition_instances_have_ground_truth():
    for instance in competition_suite("quick").instances:
        result = Solver(instance.formula()).solve(max_conflicts=instance.max_conflicts)
        assert result.status is instance.expected, instance.name


def test_instance_formulas_are_cached():
    instance = benchmark_class("Hole", "quick").instances[0]
    assert instance.formula() is instance.formula()


def test_skin_effect_instances_exist():
    instances = skin_effect_instances("quick")
    assert len(instances) >= 2
    assert len(skin_effect_instances("default")) == 5


def test_default_suite_has_mixed_statuses():
    from repro.solver.result import SolveStatus

    statuses = {
        instance.expected
        for cls in paper_suite("default")
        for instance in cls.instances
    }
    assert statuses == {SolveStatus.SAT, SolveStatus.UNSAT}
