"""Every paper experiment builds at quick scale (integration smoke tests).

These are the tests that guarantee ``python -m repro experiment all``
works; the shape assertions (who wins, aborts) live in the benchmark
harness and EXPERIMENTS.md, since quick-scale instances are too small to
discriminate heuristics reliably.
"""

import importlib

import pytest

EXPERIMENTS = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "fig1",
]


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_experiment_builds_at_quick_scale(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    table = module.build(scale="quick")
    text = table.render()
    assert table.rows
    assert text.startswith(table.title)


def test_table3_reports_skin_distances():
    from repro.experiments import table3

    profiles = table3.collect_profiles(scale="quick")
    assert profiles
    total = sum(sum(profile.values()) for profile in profiles.values())
    assert total > 0


def test_fig1_shows_activity_jump():
    from repro.experiments.fig1 import measure

    gated, active = measure(max_conflicts=3_000)
    assert not gated.control_value and active.control_value
    assert gated.cone_share <= 0.05
    assert active.cone_share > gated.cone_share


def test_table3_decay_chart_renders():
    from repro.experiments.table3 import render_decay_chart

    chart = render_decay_chart({0: 3, 1: 1000, 2: 500, 3: 100})
    lines = chart.splitlines()
    assert len(lines) == 12
    assert lines[1].count("#") > lines[3].count("#")
    assert "1000" in lines[1]


def test_paper_data_is_complete():
    from repro.experiments import paper_data

    for table in (paper_data.TABLE1, paper_data.TABLE2, paper_data.TABLE5):
        assert set(table) == set(paper_data.CLASS_ORDER)
    assert set(paper_data.TABLE4) == set(paper_data.CLASS_ORDER)
    for row in paper_data.TABLE4.values():
        assert len(row) == len(paper_data.TABLE4_CONFIGS)
    assert len(paper_data.TABLE3) == 16
