"""The experiment runner: budgets, aggregation, ground-truth enforcement."""

import pytest

from repro.cnf.formula import CnfFormula
from repro.experiments.runner import (
    GroundTruthViolation,
    run_class,
    run_instance,
    run_suite,
)
from repro.experiments.suites import BenchmarkClass, Instance
from repro.generators.pigeonhole import pigeonhole_formula
from repro.solver.config import berkmin_config, chaff_config
from repro.solver.result import SolveStatus


def _hole_instance(name="hole5", budget=30_000):
    return Instance(name, lambda: pigeonhole_formula(5), SolveStatus.UNSAT, budget)


def test_run_instance_solves_and_records():
    run = run_instance(_hole_instance(), berkmin_config())
    assert run.solved
    assert not run.aborted
    assert run.status is SolveStatus.UNSAT
    assert run.conflicts > 0
    assert run.seconds > 0


def test_budget_abort_is_recorded():
    run = run_instance(_hole_instance(budget=3), berkmin_config())
    assert run.aborted
    assert run.status is SolveStatus.UNKNOWN


def test_ground_truth_violation_raises():
    lying = Instance("lie", lambda: pigeonhole_formula(4), SolveStatus.SAT, 10_000)
    with pytest.raises(GroundTruthViolation):
        run_instance(lying, berkmin_config())


def test_run_class_aggregates():
    benchmark = BenchmarkClass(
        name="Test",
        description="",
        instances=(
            _hole_instance("a"),
            _hole_instance("b", budget=2),
        ),
    )
    result = run_class(benchmark, berkmin_config())
    assert result.solved == 1
    assert result.aborted == 1
    assert result.conflicts > 0
    assert ">" in result.time_cell() and "(1)" in result.time_cell()


def test_run_suite_shape_and_progress():
    benchmark = BenchmarkClass("T", "", (_hole_instance(),))
    messages = []
    results = run_suite([benchmark], [berkmin_config(), chaff_config()], progress=messages.append)
    assert set(results) == {"T"}
    assert set(results["T"]) == {"berkmin", "chaff"}
    assert len(messages) == 2


def test_max_conflicts_override():
    run = run_instance(_hole_instance(budget=100_000), berkmin_config(), max_conflicts=2)
    assert run.aborted
