"""Shared ablation-table plumbing."""

from repro.experiments.common import ablation_table, measured_cell
from repro.experiments.runner import ClassResult, InstanceRun
from repro.solver.result import SolveStatus
from repro.solver.stats import SolverStats


def _run(name, solved=True, seconds=1.0, conflicts=100):
    return InstanceRun(
        instance=name,
        config="berkmin",
        expected=SolveStatus.UNSAT,
        status=SolveStatus.UNSAT if solved else SolveStatus.UNKNOWN,
        seconds=seconds,
        conflicts=conflicts,
        decisions=conflicts,
        stats=SolverStats(),
    )


def test_measured_cell_formats_solved():
    result = ClassResult("C", "berkmin", runs=[_run("a"), _run("b")])
    assert measured_cell(result) == "2.00s/200c"


def test_measured_cell_marks_aborts():
    result = ClassResult("C", "berkmin", runs=[_run("a"), _run("b", solved=False)])
    cell = measured_cell(result)
    assert cell.endswith("(1 abrt)")
    assert cell.startswith("1.00s/100c")


def test_ablation_table_quick_smoke():
    table = ablation_table(
        "T", ["berkmin"], paper_rows={}, paper_total=("x",), scale="quick"
    )
    assert table.rows[-1][0] == "Total"
    assert len(table.headers) == 3  # Class, paper, measured
    assert any("paper seconds" in note for note in table.notes)
