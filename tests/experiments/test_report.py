"""The EXPERIMENTS.md report generator."""

from repro.experiments import report


def test_experiment_list_matches_modules():
    names = [name for name, _caption in report.EXPERIMENTS]
    assert names == [
        "table1", "table2", "table3", "table4", "table5",
        "table6", "table7", "table8", "table9", "table10", "fig1",
    ]


def test_build_report_subset(monkeypatch):
    monkeypatch.setattr(
        report, "EXPERIMENTS", [("table3", "skin effect"), ("fig1", "cone")]
    )
    text = report.build_report(scale="quick", progress=None)
    assert "# EXPERIMENTS — paper vs. measured" in text
    assert "## table3: skin effect" in text
    assert "## fig1: cone" in text
    assert "Table 3: skin effect" in text


def test_main_writes_file(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(report, "EXPERIMENTS", [("table3", "skin effect")])
    output = tmp_path / "report.md"
    assert report.main(["--scale", "quick", "-o", str(output)]) == 0
    assert "Table 3" in output.read_text()
    assert "wrote" in capsys.readouterr().out
