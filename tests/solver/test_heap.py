"""The BerkMin561 variable-order heap ("strategy 3", Remark 1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.heap import VariableOrderHeap


def test_push_pop_ordering():
    activities = [0, 5, 9, 1, 9]
    heap = VariableOrderHeap(activities)
    for variable in (1, 2, 3, 4):
        heap.push(variable)
    # Activity 9 twice: variable 2 wins the tie (smaller index), then 4.
    assert [heap.pop() for _ in range(4)] == [2, 4, 1, 3]


def test_push_is_idempotent():
    heap = VariableOrderHeap([0, 1, 2])
    heap.push(1)
    heap.push(1)
    assert len(heap) == 1


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        VariableOrderHeap([0]).pop()


def test_update_after_bump():
    activities = [0, 1, 2, 3]
    heap = VariableOrderHeap(activities)
    for variable in (1, 2, 3):
        heap.push(variable)
    activities[1] = 10
    heap.update(1)
    assert heap.pop() == 1


def test_update_absent_variable_is_noop():
    heap = VariableOrderHeap([0, 1])
    heap.update(1)  # not pushed
    assert len(heap) == 0


def test_rebuild_after_decay():
    activities = [0, 8, 6, 4]
    heap = VariableOrderHeap(activities)
    for variable in (1, 2, 3):
        heap.push(variable)
    for index in range(len(activities)):
        activities[index] //= 4
    heap.rebuild(list(heap.heap))
    heap.check_invariants()
    assert heap.pop() == 1  # 2 > 1 == 1: ties to smaller index -> 1? no:
    # after decay: activities [0, 2, 1, 1]; 1 has 2 -> first.


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=40), st.integers(0, 10_000))
def test_heap_sorts_like_reference(initial_activities, seed):
    activities = [0] + list(initial_activities)
    heap = VariableOrderHeap(activities)
    variables = list(range(1, len(activities)))
    rng = random.Random(seed)
    rng.shuffle(variables)
    for variable in variables:
        heap.push(variable)
        heap.check_invariants()
    # Random bumps with updates.
    for _ in range(20):
        variable = rng.randrange(1, len(activities))
        activities[variable] += rng.randint(0, 5)
        heap.update(variable)
    heap.check_invariants()
    popped = [heap.pop() for _ in range(len(variables))]
    expected = sorted(variables, key=lambda v: (-activities[v], v))
    assert popped == expected


def test_berkmin561_matches_naive_berkmin_exactly():
    """Heap and naive scan break ties identically, so the whole search is
    bit-for-bit identical: same decisions, same conflicts."""
    from repro.cnf.formula import CnfFormula
    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.generators.hanoi import hanoi_formula
    from repro.solver.config import berkmin561_config, berkmin_config
    from repro.solver.solver import Solver

    for formula in (pigeonhole_formula(6), hanoi_formula(3)):
        naive = Solver(formula, config=berkmin_config())
        optimized = Solver(formula, config=berkmin561_config())
        result_naive = naive.solve()
        result_optimized = optimized.solve()
        assert result_naive.status is result_optimized.status
        assert naive.stats.decisions == optimized.stats.decisions
        assert naive.stats.conflicts == optimized.stats.conflicts


def test_berkmin561_with_global_decisions():
    """less_mobility + heap exercises the heap on every decision."""
    from repro.baselines.brute import brute_force_satisfiable
    from repro.cnf.formula import CnfFormula
    from repro.solver.config import config_by_name
    from repro.solver.solver import Solver

    rng = random.Random(13)
    config = config_by_name(
        "less_mobility", global_selection="heap", restart_interval=6,
        activity_decay_interval=8,
    )
    for _ in range(30):
        n = rng.randint(2, 8)
        clauses = [
            [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(3, n))]
            for _ in range(rng.randint(3, 24))
        ]
        formula = CnfFormula(clauses, num_variables=n)
        result = Solver(formula, config=config).solve()
        assert result.is_sat == brute_force_satisfiable(formula)
