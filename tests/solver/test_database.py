"""Clause-database management (Section 8): the young/old keep rules,
anti-looping protection, GRASP-style limited keeping, and level-0
compaction."""

from repro.cnf.clause import Clause
from repro.cnf.formula import CnfFormula
from repro.cnf.literals import encode_literal
from repro.solver import Solver
from repro.solver.config import (
    berkmin_config,
    chaff_config,
    limited_keeping_config,
)
from repro.solver.database import reduce_database


def _fresh_solver(config=None, num_variables=80):
    formula = CnfFormula(num_variables=num_variables)
    formula.add_clause([num_variables - 1, num_variables])
    return Solver(formula, config=config or berkmin_config())


def _push_learned(solver, dimacs, activity=0):
    clause = Clause([encode_literal(lit) for lit in dimacs], learned=True)
    clause.activity = activity
    clause.birth = solver.birth_counter
    solver.birth_counter += 1
    solver.learned.append(clause)
    solver.attach_clause(clause)
    return clause


def test_berkmin_young_clause_rules():
    """Young clauses survive iff short (<= 42) or active (> 7)."""
    solver = _fresh_solver(berkmin_config(young_length_limit=5, young_activity_limit=7))
    short = _push_learned(solver, [1, 2, 3])
    long_passive = _push_learned(solver, list(range(1, 10)), activity=3)
    long_active = _push_learned(solver, list(range(1, 10)), activity=8)
    topmost = _push_learned(solver, list(range(1, 10)), activity=0)
    reduce_database(solver)
    kept = set(map(id, solver.learned))
    assert id(short) in kept
    assert id(long_passive) not in kept
    assert id(long_active) in kept
    assert id(topmost) in kept  # anti-looping: topmost never removed


def test_berkmin_old_clause_rules_and_growing_threshold():
    config = berkmin_config(
        young_fraction=0.5,
        young_length_limit=42,
        old_length_limit=2,
        old_activity_threshold=10,
        old_threshold_increment=5,
    )
    solver = _fresh_solver(config)
    # With young_fraction = 0.5 and 4 clauses, distances 2, 3 are "old".
    old_active = _push_learned(solver, [1, 2, 3], activity=11)
    old_passive = _push_learned(solver, [4, 5, 6], activity=9)
    _push_learned(solver, [7, 8, 9])
    _push_learned(solver, [10, 11, 12])
    initial_threshold = solver.old_threshold
    reduce_database(solver)
    kept = set(map(id, solver.learned))
    assert id(old_active) in kept  # activity 11 > threshold 10
    assert id(old_passive) not in kept  # length 3 > 2 and activity 9 <= 10
    assert solver.old_threshold == initial_threshold + 5


def test_protected_clauses_survive():
    solver = _fresh_solver(berkmin_config(young_length_limit=1, young_activity_limit=99))
    doomed = _push_learned(solver, [1, 2, 3])
    saved = _push_learned(solver, [4, 5, 6])
    saved.protected = True
    _push_learned(solver, [7, 8, 9])  # topmost
    reduce_database(solver)
    kept = set(map(id, solver.learned))
    assert id(doomed) not in kept
    assert id(saved) in kept


def test_limited_keeping_drops_by_length_only():
    solver = _fresh_solver(limited_keeping_config(limited_keeping_length=4))
    long_active = _push_learned(solver, [1, 2, 3, 4, 5], activity=1000)
    short_passive = _push_learned(solver, [6, 7])
    _push_learned(solver, [8, 9])  # topmost
    reduce_database(solver)
    kept = set(map(id, solver.learned))
    assert id(long_active) not in kept  # GRASP ignores activity
    assert id(short_passive) in kept


def test_level0_satisfied_clauses_removed_and_literals_stripped():
    solver = Solver(CnfFormula([[1], [1, 2], [-1, 2, 3], [2, 3, 4]]))
    assert solver._propagate() is None  # 1 = True at level 0
    reduce_database(solver)
    remaining = [clause.to_dimacs() for clause in solver.clauses]
    # [1, 2] satisfied -> gone; [-1, 2, 3] stripped to [2, 3].
    assert sorted(map(sorted, remaining)) == [[2, 3], [2, 3, 4]]


def test_reduction_rebuilds_watches_and_binaries():
    solver = Solver(CnfFormula([[1], [-1, 2, 3], [3, 4, 5]]))
    solver._propagate()
    reduce_database(solver)
    # [-1, 2, 3] became the binary [2, 3]: the implication arrays must know
    # (binary clauses live there, not in the watch lists).
    assert solver.binary_count[encode_literal(2)] == 1
    assert solver.binary_count[encode_literal(3)] == 1
    assert solver.binary_implications[encode_literal(2)] == [encode_literal(3)]
    assert solver.binary_implications[encode_literal(3)] == [encode_literal(2)]
    for clause in solver.clauses:
        if clause.is_binary:
            first, second = clause.literals
            assert second in solver.binary_implications[first]
            assert first in solver.binary_implications[second]
            assert not any(clause in lst for lst in solver.watches)
        else:
            assert clause in solver.watches[clause.literals[0]]
            assert clause in solver.watches[clause.literals[1]]


def test_deleted_count_in_stats():
    solver = _fresh_solver(berkmin_config(young_length_limit=1, young_activity_limit=99))
    for start in range(1, 9):
        _push_learned(solver, [start, start + 1, start + 2])
    reduce_database(solver)
    assert solver.stats.learned_deleted == 7  # all but the topmost


def test_mark_every_n_restarts_protects_clauses():
    from repro.generators.pigeonhole import pigeonhole_formula

    config = berkmin_config(
        restart_interval=20, mark_every_n_restarts=1, young_length_limit=1,
        young_activity_limit=0,
    )
    solver = Solver(pigeonhole_formula(6), config=config)
    solver.solve(max_conflicts=2_000)
    assert any(clause.protected for clause in solver.learned)


def test_reduction_requires_level_zero():
    import pytest

    solver = _fresh_solver()
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(1), None)
    with pytest.raises(AssertionError):
        reduce_database(solver)


def test_solving_continues_correctly_after_reductions():
    """End-to-end: frequent restarts + aggressive deletion stay correct."""
    from repro.baselines.brute import brute_force_satisfiable
    import random

    rng = random.Random(3)
    config = berkmin_config(
        restart_interval=4, young_length_limit=1, young_activity_limit=0,
        old_length_limit=1, old_activity_threshold=0,
    )
    for _ in range(40):
        n = rng.randint(2, 8)
        clauses = []
        for _ in range(rng.randint(3, 26)):
            arity = min(rng.randint(1, 3), n)
            variables = rng.sample(range(1, n + 1), arity)
            clauses.append([v * rng.choice((1, -1)) for v in variables])
        formula = CnfFormula(clauses, num_variables=n)
        result = Solver(formula, config=config).solve(max_conflicts=50_000)
        assert not result.is_unknown
        assert result.is_sat == brute_force_satisfiable(formula)


def test_chaff_config_uses_limited_keeping():
    assert chaff_config().db_management == "limited_keeping"


def test_forced_binary_deletion_updates_implication_arrays():
    """A policy-deleted learned binary clause must vanish from the binary
    indexes (paper defaults always keep length-2 clauses, but
    limited_keeping_length=1 forces the case)."""
    solver = _fresh_solver(limited_keeping_config(limited_keeping_length=1))
    binary = _push_learned(solver, [5, 6])
    _push_learned(solver, [7, 8, 9])  # topmost (never removed) shields the binary
    lit5, lit6 = encode_literal(5), encode_literal(6)
    assert solver.binary_implications[lit5] == [lit6]
    assert solver.binary_count[lit5] == 1

    reduce_database(solver)

    assert binary not in solver.learned
    assert solver.binary_implications[lit5] == []
    assert solver.binary_implications[lit6] == []
    assert solver.binary_count[lit5] == 0
    assert solver.binary_count[lit6] == 0
    assert not any(binary is clause for lst in solver.watches for clause in lst)


def test_solves_correctly_after_forced_binary_deletions(monkeypatch):
    """End-to-end regression: dropping learned binaries mid-search must not
    corrupt propagation, under either BCP engine."""
    from repro.generators.pigeonhole import pigeonhole_formula

    deleted_binaries = {"count": 0}
    original = Solver.log_proof_delete

    def spy(self, clause):
        if clause.learned and len(clause) == 2:
            deleted_binaries["count"] += 1
        return original(self, clause)

    monkeypatch.setattr(Solver, "log_proof_delete", spy)
    for mode in ("split", "general"):
        config = limited_keeping_config(
            limited_keeping_length=1, restart_interval=20, propagation=mode
        )
        result = Solver(pigeonhole_formula(4), config=config).solve()
        assert result.is_unsat
    assert deleted_binaries["count"] > 0, "no binary clause was ever deleted"
