"""Repeated Solver.solve calls: clean re-solves, interrupts, re-entrancy."""

import pytest

from repro.generators import pigeonhole_formula, planted_ksat
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver


def test_resolve_after_sat_is_clean():
    solver = Solver(planted_ksat(12, 40, 3, seed=6))
    first = solver.solve()
    second = solver.solve()
    assert first.status is second.status is SolveStatus.SAT
    assert first.model is not None and second.model is not None


def test_resolve_after_unsat_stays_unsat():
    solver = Solver(pigeonhole_formula(3))
    assert solver.solve().status is SolveStatus.UNSAT
    # The refutation is permanent; a second call must not resurrect it.
    assert solver.solve().status is SolveStatus.UNSAT


def test_interrupt_then_clear_then_resolve():
    solver = Solver(pigeonhole_formula(4))
    solver.interrupt()
    result = solver.solve()
    assert result.status is SolveStatus.UNKNOWN
    assert result.limit_reason == "interrupted"
    # The flag is consumed by the interrupted solve; a fresh call runs.
    rerun = solver.solve()
    assert rerun.status is SolveStatus.UNSAT


def test_clear_interrupt_cancels_a_pending_interrupt():
    solver = Solver(pigeonhole_formula(4))
    solver.interrupt()
    solver.clear_interrupt()
    assert solver.solve().status is SolveStatus.UNSAT


def test_repeated_interrupt_cycles():
    solver = Solver(pigeonhole_formula(4))
    for _ in range(3):
        solver.interrupt()
        assert solver.solve().limit_reason == "interrupted"
    assert solver.solve().status is SolveStatus.UNSAT


def test_budget_then_resolve_continues_to_an_answer():
    solver = Solver(pigeonhole_formula(5))
    partial = solver.solve(max_conflicts=5)
    assert partial.status is SolveStatus.UNKNOWN
    assert partial.limit_reason == "conflict budget"
    finished = solver.solve()
    assert finished.status is SolveStatus.UNSAT


def test_reentrant_solve_raises_clear_error():
    solver = Solver(pigeonhole_formula(5))

    def reenter(stats):
        solver.solve()

    with pytest.raises(RuntimeError, match="not re-entrant"):
        solver.solve(on_progress=reenter)
    # The guard resets: the same instance solves fine afterwards.
    assert solver.solve().status is SolveStatus.UNSAT


def test_assumptions_do_not_leak_across_solves():
    solver = Solver(planted_ksat(10, 30, 3, seed=8))
    constrained = solver.solve(assumptions=[1])
    unconstrained = solver.solve()
    assert constrained.status in (SolveStatus.SAT, SolveStatus.UNSAT)
    assert unconstrained.status is SolveStatus.SAT
    assert not unconstrained.under_assumptions
