"""SolverStats derived quantities (the Table 3 / Table 9 instrumentation)."""

import dataclasses

from repro.solver.stats import SolverStats, aggregate_stats


def test_skin_distance_recording():
    stats = SolverStats()
    stats.record_skin_distance(0)
    stats.record_skin_distance(1)
    stats.record_skin_distance(1)
    assert stats.skin_effect == {0: 1, 1: 2}
    assert stats.skin_profile((0, 1, 2)) == {0: 1, 1: 2, 2: 0}


def test_database_growth_ratio():
    stats = SolverStats(initial_clauses=100, learned_total=250)
    assert stats.database_growth_ratio() == 3.5


def test_peak_memory_ratio():
    stats = SolverStats(initial_clauses=200, peak_clauses=240)
    assert stats.peak_memory_ratio() == 1.2


def test_ratios_with_no_clauses():
    stats = SolverStats()
    assert stats.database_growth_ratio() == 0.0
    assert stats.peak_memory_ratio() == 0.0


def test_as_dict_roundtrips_fields():
    stats = SolverStats(decisions=3, conflicts=2, initial_clauses=10, learned_total=5)
    summary = stats.as_dict()
    assert summary["decisions"] == 3
    assert summary["conflicts"] == 2
    assert summary["database_growth_ratio"] == 1.5


def test_merge_never_drops_a_field():
    """Aggregating N nonzero snapshots must account for EVERY dataclass field.

    Built by introspection so that a future counter added to SolverStats
    but forgotten in merge() fails here instead of silently reading zero
    in batch reports.
    """
    peak_fields = {"peak_clauses", "max_decision_level"}
    snapshots = []
    for index in range(1, 4):
        stats = SolverStats()
        for position, spec in enumerate(dataclasses.fields(SolverStats)):
            if spec.name == "skin_effect":
                value = {index: index * 10 + position}
            elif spec.type == "float":
                value = float(index * 100 + position)
            else:
                value = index * 100 + position
            setattr(stats, spec.name, value)
        snapshots.append(stats)

    total = aggregate_stats(snapshots)
    for position, spec in enumerate(dataclasses.fields(SolverStats)):
        merged = getattr(total, spec.name)
        contributions = [getattr(snapshot, spec.name) for snapshot in snapshots]
        if spec.name == "skin_effect":
            assert merged == {index: index * 10 + position for index in range(1, 4)}
        elif spec.name in peak_fields:
            assert merged == max(contributions), spec.name
        else:
            assert merged == sum(contributions), spec.name


def test_aggregate_matches_as_dict_keys():
    """Every plain counter field surfaces in as_dict (no hidden state)."""
    summary_keys = set(SolverStats().as_dict())
    for spec in dataclasses.fields(SolverStats):
        if spec.name == "skin_effect":  # reported via skin_profile instead
            continue
        assert spec.name in summary_keys, spec.name


def test_rates_clamp_unmeasurable_and_garbage_wall_times():
    """Sub-microsecond, zero, negative, inf, and NaN wall times must all
    report 0.0 rates — never a count/epsilon explosion (the bench JSON
    and metrics rows both consume these numbers raw)."""
    stats = SolverStats(propagations=10_000, conflicts=500, decisions=700)
    for garbage in (0.0, -1.0, 1e-9, float("inf"), float("nan")):
        stats.solve_time_seconds = garbage
        rates = stats.rates()
        assert rates == {
            "propagations_per_second": 0.0,
            "conflicts_per_second": 0.0,
            "decisions_per_second": 0.0,
        }, f"wall={garbage}"
    stats.solve_time_seconds = 2.0
    assert stats.propagations_per_second() == 5_000.0
    assert stats.conflicts_per_second() == 250.0
    assert stats.decisions_per_second() == 350.0


def test_live_stats_track_reality():
    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.solver.solver import Solver

    formula = pigeonhole_formula(6)
    solver = Solver(formula)
    solver.solve()
    stats = solver.stats
    assert stats.initial_clauses == formula.num_clauses
    assert stats.learned_total > 0
    assert stats.peak_clauses >= formula.num_clauses
    assert stats.database_growth_ratio() > 1.0
    assert stats.decisions >= stats.max_decision_level
    assert stats.top_clause_decisions + stats.formula_decisions == stats.decisions
