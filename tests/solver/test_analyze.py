"""Conflict analysis: the paper's Section 2 worked example, 1UIP
properties, and activity bookkeeping (Section 4)."""

from repro.cnf.formula import CnfFormula
from repro.cnf.literals import encode_literal
from repro.solver import Solver
from repro.solver.config import berkmin_config, less_sensitivity_config


def _paper_example_solver():
    """The running example of Section 2.

    F = (a + ~b)(b + ~c + y)(c + ~d + x)(c + d), with x and y assigned 0
    earlier and the decision a = 0 triggering the conflict on (c + d).
    Variables: a=1, b=2, c=3, d=4, x=5, y=6.
    """
    formula = CnfFormula(
        [
            [1, -2],
            [2, -3, 6],
            [3, -4, 5],
            [3, 4],
        ]
    )
    solver = Solver(formula)
    assert solver._propagate() is None
    # Decisions: x = 0, y = 0, then a = 0.
    for literal in (-5, -6, -1):
        solver.trail_limits.append(len(solver.trail))
        solver._enqueue(encode_literal(literal), None)
        conflict = solver._propagate()
        if literal != -1:
            assert conflict is None
    return solver, conflict


def test_paper_example_conflict_clause():
    """Reverse BCP must deduce the conflict clause c + x = {3, 5}."""
    solver, conflict = _paper_example_solver()
    assert conflict is not None
    # Binary implications propagate first, so (c + d) implies d = 1 before
    # the long clause (c + ~d + x) is examined and the conflict surfaces
    # there.  (The paper's narrative examines the long clause first and
    # conflicts on (c + d); either way the same resolution happens and the
    # learnt clause below is the paper's c + x.)
    assert sorted(abs(lit) for lit in conflict.to_dimacs()) == [3, 4, 5]
    learnt, backtrack_level = solver._analyze(conflict)
    dimacs = sorted(
        (lit >> 1) * (-1 if lit & 1 else 1) for lit in learnt
    )
    # Conflict assignment {c = 0, x = 0} -> conflict clause (c + x).
    assert dimacs == [3, 5]
    # x was assigned at level 1, so the solver backjumps there
    # (non-chronological: skipping the y level entirely).
    assert backtrack_level == 1


def test_paper_example_responsible_clause_activities():
    """BerkMin bumps variables of *all* clauses responsible for the conflict.

    The resolution chain uses (c + d), (c + ~d + x); BerkMin-style
    activity must therefore credit d (absent from the learned clause),
    while the Chaff-style ablation must not.
    """
    solver, conflict = _paper_example_solver()
    solver._analyze(conflict)
    assert solver.var_activity[4] > 0  # d: in responsible clauses only
    assert solver.var_activity[3] >= 2  # c: occurs in both responsible clauses

    chaff_solver, chaff_conflict = _paper_example_solver()
    chaff_solver.config = less_sensitivity_config()
    chaff_solver._analyze(chaff_conflict)
    assert chaff_solver.var_activity[4] == 0  # d overlooked by Chaff's rule
    assert chaff_solver.var_activity[3] == 1
    assert chaff_solver.var_activity[5] == 1  # x: in the conflict clause


def test_lit_activity_counts_learned_clause_literals():
    solver, conflict = _paper_example_solver()
    learnt, _ = solver._analyze(conflict)
    for literal in learnt:
        assert solver.lit_activity[literal] == 1
        assert solver.lit_activity[literal ^ 1] == 0


def test_learnt_clause_asserts_after_backjump():
    """The first literal of the learnt clause must be unit after backjumping."""
    solver, conflict = _paper_example_solver()
    learnt, backtrack_level = solver._analyze(conflict)
    solver._backtrack(backtrack_level)
    assert solver._value(learnt[0]) == -1  # unassigned
    for literal in learnt[1:]:
        assert solver._value(literal) == 0  # false


def test_clause_activity_counts_responsibility():
    """clause_activity(C) counts conflicts C was responsible for."""
    from repro.generators.pigeonhole import pigeonhole_formula

    solver = Solver(pigeonhole_formula(5), config=berkmin_config())
    solver.solve()
    # At least some learned clause participated in a later conflict.
    assert solver.stats.conflicts > 10
