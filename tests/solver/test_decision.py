"""Decision strategies: BerkMin top-clause branching, the global
fallback, VSIDS, and the skin-effect instrumentation (Sections 5-6)."""

from repro.cnf.clause import Clause
from repro.cnf.formula import CnfFormula
from repro.cnf.literals import encode_literal
from repro.solver import Solver
from repro.solver.config import (
    berkmin_config,
    chaff_config,
    less_mobility_config,
    random_decision_config,
)
from repro.solver.decision import (
    berkmin_decision,
    choose_decision,
    global_decision,
    vsids_decision,
)


def _solver_with_learned_stack():
    """A solver with three free variables and a hand-built learned stack."""
    solver = Solver(CnfFormula([[1, 2, 3, 4]]))
    for literals in ([1, 2], [2, 3], [3, 4]):
        clause = Clause([encode_literal(lit) for lit in literals], learned=True)
        solver.learned.append(clause)
        solver.attach_clause(clause)
    solver.search_cursor = len(solver.learned) - 1
    return solver


def test_top_clause_is_topmost_unsatisfied():
    solver = _solver_with_learned_stack()
    solver.var_activity[3] = 5
    solver.var_activity[4] = 2
    literal = berkmin_decision(solver)
    # Topmost clause [3, 4] is unsatisfied; variable 3 is more active.
    assert literal >> 1 == 3
    assert solver.stats.top_clause_decisions == 1
    assert solver.stats.skin_effect.get(0) == 1


def test_satisfied_top_clauses_are_skipped():
    solver = _solver_with_learned_stack()
    # Satisfy the top clause [3, 4] by assigning 3 = True at a new level.
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(3), None)
    solver.search_cursor = len(solver.learned) - 1
    solver.var_activity[2] = 9
    literal = berkmin_decision(solver)
    # Now [2, 3]... is satisfied too (contains 3); [1, 2] is the top clause.
    assert literal >> 1 == 2
    assert solver.stats.skin_effect.get(2) == 1


def test_global_fallback_when_all_conflict_clauses_satisfied():
    solver = _solver_with_learned_stack()
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(2), None)
    solver._enqueue(encode_literal(3), None)
    solver.search_cursor = len(solver.learned) - 1
    solver.var_activity[4] = 1
    solver.var_activity[1] = 7
    literal = berkmin_decision(solver)
    assert literal >> 1 == 1  # most active free variable overall
    assert solver.stats.formula_decisions == 1
    assert solver.search_cursor == -1


def test_cursor_resets_on_backtrack():
    solver = _solver_with_learned_stack()
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(3), None)
    berkmin_decision(solver)
    assert solver.search_cursor < len(solver.learned) - 1
    solver._backtrack(0)
    assert solver.search_cursor == len(solver.learned) - 1


def test_global_decision_ignores_stack():
    solver = _solver_with_learned_stack()
    solver.var_activity[1] = 50
    literal = global_decision(solver)
    assert literal >> 1 == 1


def test_vsids_picks_highest_literal_counter():
    solver = _solver_with_learned_stack()
    solver.vsids[encode_literal(-2)] = 10
    literal = vsids_decision(solver)
    assert literal == encode_literal(-2)


def test_vsids_sets_chosen_literal_true():
    solver = Solver(CnfFormula([[1, 2]]), config=chaff_config())
    solver.vsids[encode_literal(-1)] = 3
    result = solver.solve()
    assert result.is_sat
    assert result.model[1] is False  # the hot literal was made true


def test_decision_returns_none_when_all_assigned():
    solver = Solver(CnfFormula([[1]]))
    solver._propagate()
    assert choose_decision(solver) is None


def test_random_decision_is_seeded():
    config = random_decision_config(seed=5)
    first = Solver(CnfFormula([[1, 2, 3]]), config=config).solve()
    second = Solver(CnfFormula([[1, 2, 3]]), config=config).solve()
    assert first.model == second.model


def test_skin_effect_profile_decreases_on_hard_instance():
    """The Table 3 phenomenon: younger clauses dominate decision-making."""
    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.experiments.table3 import monotone_share

    solver = Solver(pigeonhole_formula(7), config=berkmin_config())
    solver.solve(max_conflicts=20_000)
    profile = solver.stats.skin_effect
    assert sum(profile.values()) == solver.stats.top_clause_decisions
    assert monotone_share(profile, prefix=6) >= 0.6


def test_wide_window_considers_multiple_top_clauses():
    """Remark 2 extension: a window > 1 can pick a variable from a deeper
    unsatisfied clause when it is more active."""
    from repro.solver.config import wide_window_config

    solver = _solver_with_learned_stack()
    solver.config = wide_window_config(window=3)
    solver.var_activity[1] = 99  # only in the bottom clause [1, 2]
    solver.var_activity[4] = 5
    literal = berkmin_decision(solver)
    assert literal >> 1 == 1
    # The skin-effect distance still refers to the topmost unsatisfied clause.
    assert solver.stats.skin_effect.get(0) == 1


def test_wide_window_equals_paper_behaviour_with_window_one():
    from repro.solver.config import wide_window_config

    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.solver.solver import Solver

    base = Solver(pigeonhole_formula(5)).solve()
    windowed = Solver(
        pigeonhole_formula(5), config=wide_window_config(window=1, name="berkmin")
    ).solve()
    assert base.status is windowed.status
    assert base.stats.decisions == windowed.stats.decisions


def test_less_mobility_still_counts_formula_decisions():
    from repro.generators.pigeonhole import pigeonhole_formula

    solver = Solver(pigeonhole_formula(5), config=less_mobility_config())
    result = solver.solve()
    assert result.is_unsat
    assert solver.stats.top_clause_decisions == 0
    assert solver.stats.formula_decisions > 0
