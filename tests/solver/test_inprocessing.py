"""Inprocessing coverage: elimination, arena GC, and the checkpoint seam.

Bounded variable elimination rewrites the live formula mid-search, so
three things must keep working across it: SAT models must extend over
eliminated variables and still satisfy the *original* formula, the
arena's mark-and-compact GC must reclaim the words that elimination and
clause sweeps kill without corrupting the live records, and a
checkpoint captured after a compaction must restore into an equivalent
solver (same answer, eliminated stack intact).  The C kernels and their
pure-Python fallbacks must agree bit-for-bit on whole trajectories —
``REPRO_SAT_PURE=1`` is the fallback's audit switch.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.generators import pigeonhole_formula
from repro.reliability.verify import verify_result
from repro.solver.config import arena_config, berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver

#: Aggressive knobs: inprocess on every restart, restart early, collect
#: the arena as soon as 5% of its words are dead.
_AGGRESSIVE = dict(restart_interval=20, inprocess_interval=1, arena_gc_fraction=0.05)


def test_eliminated_variable_model_reconstruction():
    # A square pigeonhole instance: satisfiable (a perfect matching),
    # and its at-most-one ladders give elimination plenty of
    # low-occurrence candidates.
    formula = pigeonhole_formula(8, 8)
    solver = Solver(formula, config=arena_config(**_AGGRESSIVE))
    result = solver.solve()  # verify=True re-checks the model internally
    assert result.status is SolveStatus.SAT
    assert solver.stats.eliminated_variables > 0
    # The model must cover every variable — including eliminated ones,
    # which only reconstruction can value — and satisfy every original
    # clause (the arena's live database no longer contains them all).
    assert set(result.model) == set(range(1, formula.num_variables + 1))
    for clause in formula.clauses:
        assert any(result.model[abs(lit)] == (lit > 0) for lit in clause)


def test_arena_gc_fires_under_forced_reduce_and_answers_hold():
    for name, formula, expected in [
        ("hole6", pigeonhole_formula(6), SolveStatus.UNSAT),
        ("hole8x8", pigeonhole_formula(8, 8), SolveStatus.SAT),
    ]:
        solver = Solver(formula, config=arena_config(**_AGGRESSIVE))
        result = solver.solve()
        assert result.status is expected, name
        assert solver.stats.inprocess_passes > 0, name
        assert solver.stats.arena_collections > 0, name
        # After GC the dead-word ledger must match a fresh scan: fewer
        # dead words than the collection threshold implies.
        assert solver.arena_dead <= len(solver.arena)


def test_unsat_proof_rup_checks_across_inprocessing():
    formula = pigeonhole_formula(5)
    solver = Solver(
        formula, config=arena_config(proof_logging=True, **_AGGRESSIVE)
    )
    result = solver.solve()
    assert result.status is SolveStatus.UNSAT
    assert solver.stats.eliminated_variables > 0
    assert verify_result(formula, result) == "proof"


def test_checkpoint_roundtrip_across_compaction(tmp_path):
    from repro.checkpoint.snapshot import save_checkpoint, try_load_checkpoint

    formula = pigeonhole_formula(7)
    solver = Solver(formula, config=arena_config(seed=9, **_AGGRESSIVE))
    partial = solver.solve(max_conflicts=2000)
    assert partial.status is SolveStatus.UNKNOWN
    assert solver.stats.arena_collections > 0  # a compaction already ran
    assert solver.stats.eliminated_variables > 0
    path = tmp_path / "arena.ckpt"
    save_checkpoint(solver, path)

    resumed = Solver(formula, config=arena_config(seed=9, **_AGGRESSIVE))
    snapshot = try_load_checkpoint(path)
    assert snapshot is not None and snapshot.arena is not None
    assert resumed.resume(snapshot)
    # The eliminated stack must survive the round trip: those variables
    # stay out of the search and reconstruct at model-extraction time.
    assert len(resumed._eliminated) == len(solver._eliminated)
    result = resumed.solve()
    assert result.status is SolveStatus.UNSAT


def test_object_engine_ignores_arena_snapshot_payload(tmp_path):
    """Cross-engine resume: an object engine restoring an arena snapshot
    drops the arena payload (its pristine formula implies every stored
    clause) and still answers correctly."""
    from repro.checkpoint.snapshot import save_checkpoint, try_load_checkpoint

    formula = pigeonhole_formula(6)
    donor = Solver(formula, config=arena_config(seed=4, **_AGGRESSIVE))
    donor.solve(max_conflicts=500)
    path = tmp_path / "cross.ckpt"
    save_checkpoint(donor, path)

    receiver = Solver(formula, config=berkmin_config(seed=4))
    snapshot = try_load_checkpoint(path)
    assert receiver.resume(snapshot)
    assert receiver.solve().status is SolveStatus.UNSAT


def test_inject_lemma_rejects_eliminated_variables():
    formula = pigeonhole_formula(6)
    solver = Solver(formula, config=arena_config(**_AGGRESSIVE))
    solver.solve(max_conflicts=2000)
    assert solver._eliminated, "test premise: elimination must have fired"
    variable = solver._eliminated[0][0]
    assert solver.inject_lemma([variable, -(variable % formula.num_variables + 1)], 2) is False


def test_kernel_and_pure_fallback_trajectories_identical():
    """REPRO_SAT_PURE=1 must not change a single counter.

    The pure-Python propagate/analyze/backtrack paths are the semantics
    reference for the C kernels; a divergence in conflicts, decisions,
    or propagations means the kernel took a different search path.
    Run in a subprocess because kernel loading is cached per-process.
    """
    script = r"""
import json, sys
from repro.generators import pigeonhole_formula, planted_ksat
from repro.solver.config import arena_config
from repro.solver.solver import Solver

rows = []
for formula in (pigeonhole_formula(6), planted_ksat(40, 160, 3, seed=2)):
    solver = Solver(
        formula,
        config=arena_config(restart_interval=20, inprocess_interval=1, seed=1),
    )
    result = solver.solve()
    rows.append(
        [
            result.status.name,
            solver.stats.conflicts,
            solver.stats.decisions,
            solver.stats.propagations,
            solver.stats.eliminated_variables,
        ]
    )
print(json.dumps(rows))
"""
    outputs = {}
    for pure in ("0", "1"):
        env = dict(os.environ, REPRO_SAT_PURE=pure)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs[pure] = proc.stdout.strip()
    assert outputs["0"] == outputs["1"], (
        f"kernel vs pure fallback diverged:\n{outputs['0']}\n{outputs['1']}"
    )


def test_arena_session_retention_and_incremental_adds():
    """The session seam: retention sweeps and later add_clause calls on
    a solver whose database has been through elimination."""
    formula = pigeonhole_formula(6)
    solver = Solver(formula, config=arena_config(**_AGGRESSIVE))
    solver.solve(max_conflicts=1500)
    kept, dropped = solver.retain_learned_by_lbd(3)
    assert kept >= 0 and dropped >= 0
    # A new clause naming an eliminated variable restores it.
    if solver._eliminated:
        variable = solver._eliminated[-1][0]
        assert solver.add_clause([variable]) in (True, False)
        assert not solver._eliminated_mark[variable]
    result = solver.solve()
    assert result.status is SolveStatus.UNSAT
