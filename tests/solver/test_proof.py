"""DRUP proof logging and the RUP checker."""

import random

import pytest

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.proof import ProofError, check_rup_proof
from repro.proof.rup import _is_rup
from repro.solver import Solver
from repro.solver.config import berkmin_config, chaff_config


def _solve_with_proof(formula, config_name="berkmin", **overrides):
    config = {
        "berkmin": berkmin_config,
        "chaff": chaff_config,
    }[config_name](proof_logging=True, **overrides)
    solver = Solver(formula, config=config)
    return solver.solve()


def test_unsat_proof_checks():
    from repro.generators.pigeonhole import pigeonhole_formula

    formula = pigeonhole_formula(5)
    result = _solve_with_proof(formula)
    assert result.is_unsat
    assert result.proof is not None
    assert check_rup_proof(formula, result.proof)


def test_proof_includes_deletions_after_restarts():
    from repro.generators.pigeonhole import pigeonhole_formula

    formula = pigeonhole_formula(6)
    result = _solve_with_proof(formula, restart_interval=40)
    kinds = {kind for kind, _ in result.proof}
    assert kinds == {"a", "d"}
    assert check_rup_proof(formula, result.proof)


def test_proofs_from_chaff_config_check_too():
    from repro.generators.pigeonhole import pigeonhole_formula

    formula = pigeonhole_formula(5)
    result = _solve_with_proof(formula, "chaff", restart_interval=30)
    assert result.is_unsat
    assert check_rup_proof(formula, result.proof)


def test_sat_results_have_no_proof():
    result = _solve_with_proof(CnfFormula([[1, 2]]))
    assert result.is_sat
    assert result.proof is None


def test_proof_requires_empty_clause():
    formula = CnfFormula([[1], [-1]])
    with pytest.raises(ProofError, match="empty clause"):
        check_rup_proof(formula, [], require_empty_clause=True)


def test_bogus_addition_is_rejected():
    formula = CnfFormula([[1, 2], [-1, 2]])
    with pytest.raises(ProofError, match="not a RUP consequence"):
        check_rup_proof(formula, [("a", [-2])], require_empty_clause=False)


def test_bogus_deletion_is_rejected():
    formula = CnfFormula([[1, 2]])
    with pytest.raises(ProofError, match="not in database"):
        check_rup_proof(formula, [("d", [3, 4])], require_empty_clause=False)


def test_unknown_action_is_rejected():
    formula = CnfFormula([[1]])
    with pytest.raises(ProofError, match="unknown proof action"):
        check_rup_proof(formula, [("x", [1])], require_empty_clause=False)


def test_valid_manual_proof():
    formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    proof = [("a", [2]), ("a", [1]), ("a", [])]
    # (2) is RUP: assume -2, then [1,2]->1, [-1,2]->conflict. And so on.
    assert check_rup_proof(formula, proof)


def test_is_rup_tautological_negation():
    assert _is_rup([], [1, -1])


def test_random_unsat_proofs_check(subtests=None):
    rng = random.Random(5)
    checked = 0
    while checked < 12:
        n = rng.randint(2, 6)
        clauses = [
            [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(2, n))]
            for _ in range(rng.randint(6, 20))
        ]
        formula = CnfFormula(clauses, num_variables=n)
        if brute_force_satisfiable(formula):
            continue
        result = _solve_with_proof(formula, restart_interval=5)
        assert result.is_unsat
        assert check_rup_proof(formula, result.proof)
        checked += 1
