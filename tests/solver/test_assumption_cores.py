"""Failed-assumption cores (MiniSat-style analyzeFinal)."""

import random

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.solver.solver import Solver


def _check_core(formula, assumptions, core):
    assert core is not None
    assert set(core) <= set(assumptions)
    augmented = formula.copy()
    for literal in core:
        augmented.add_clause([literal])
    assert not brute_force_satisfiable(augmented)


def test_simple_core():
    formula = CnfFormula([[-1, -2]])
    result = Solver(formula).solve(assumptions=[1, 2])
    assert result.is_unsat and result.under_assumptions
    _check_core(formula, [1, 2], result.core)
    assert set(result.core) == {1, 2}


def test_core_excludes_irrelevant_assumptions():
    formula = CnfFormula([[-1, -2]], num_variables=5)
    result = Solver(formula).solve(assumptions=[3, 4, 1, 5, 2])
    assert result.is_unsat
    _check_core(formula, [3, 4, 1, 5, 2], result.core)
    assert 3 not in result.core and 4 not in result.core and 5 not in result.core


def test_contradictory_assumption_pair():
    formula = CnfFormula([[1, 2]])
    result = Solver(formula).solve(assumptions=[1, -1])
    assert result.is_unsat
    assert set(result.core) == {1, -1}


def test_core_through_propagation_chain():
    formula = CnfFormula([[-1, 2], [-2, 3], [-3, -4]])
    result = Solver(formula).solve(assumptions=[1, 4])
    assert result.is_unsat
    _check_core(formula, [1, 4], result.core)


def test_level_zero_failure_gives_singleton_core():
    formula = CnfFormula([[1, 2], [-2], [1, 3]])  # forces nothing about 1? no:
    # [-2] forces 2 = False, so [1, 2] forces 1 = True at level 0.
    result = Solver(formula).solve(assumptions=[-1])
    assert result.is_unsat
    assert result.core == [-1]


def test_no_core_for_plain_unsat():
    formula = CnfFormula([[1], [-1]])
    result = Solver(formula).solve()
    assert result.is_unsat
    assert result.core is None
    assert not result.under_assumptions


def test_random_cores_are_sound():
    rng = random.Random(9)
    produced = 0
    while produced < 20:
        n = rng.randint(2, 7)
        clauses = [
            [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(2, n))]
            for _ in range(rng.randint(2, 14))
        ]
        formula = CnfFormula(clauses, num_variables=n)
        if not brute_force_satisfiable(formula):
            continue  # want UNSAT to come from the assumptions
        assumptions = [
            v * rng.choice((1, -1))
            for v in rng.sample(range(1, n + 1), rng.randint(1, n))
        ]
        result = Solver(formula).solve(assumptions=assumptions)
        if not result.is_unsat:
            continue
        assert result.under_assumptions
        _check_core(formula, assumptions, result.core)
        produced += 1
