"""Implication-graph snapshots."""

from repro.cnf.formula import CnfFormula
from repro.cnf.literals import encode_literal
from repro.solver.graph import ImplicationGraph
from repro.solver.solver import Solver


def _propagated_solver():
    formula = CnfFormula([[-1, 2], [-2, -3, 4], [3]])
    solver = Solver(formula)
    assert solver._propagate() is None  # 3 = True at level 0
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(1), None)  # decide 1 = True
    assert solver._propagate() is None
    return solver


def test_snapshot_structure():
    solver = _propagated_solver()
    graph = ImplicationGraph.from_solver(solver)
    assert set(graph.nodes) == {1, 2, 3, 4}
    assert graph.nodes[1].is_decision and graph.nodes[1].level == 1
    assert graph.nodes[3].level == 0
    # 2 was implied by 1 through (-1 | 2).
    assert graph.implied_by(2) == [1]
    # 4 was implied by 2 and 3 through (-2 | -3 | 4).
    assert sorted(graph.implied_by(4)) == [2, 3]
    assert graph.nodes[4].antecedents == [2, 3] or sorted(
        graph.nodes[4].antecedents
    ) == [2, 3]


def test_decisions_listing():
    solver = _propagated_solver()
    graph = ImplicationGraph.from_solver(solver)
    assert graph.decisions() == [1]


def test_invariants_hold_during_search():
    from repro.generators.pigeonhole import pigeonhole_formula

    solver = Solver(pigeonhole_formula(5))
    # Take the solver mid-flight by budgeting decisions, then snapshot.
    solver.solve(max_decisions=10)
    graph = ImplicationGraph.from_solver(solver)
    graph.check_acyclic_and_ordered()


def test_dot_rendering():
    solver = _propagated_solver()
    graph = ImplicationGraph.from_solver(solver)
    dot = graph.to_dot(highlight={4})
    assert dot.startswith("digraph implications {")
    assert 'v1 [label="1 @ 1", shape=box];' in dot
    assert "v2 -> v4;" in dot
    assert "fillcolor=lightcoral" in dot
    assert dot.rstrip().endswith("}")


def test_antecedents_of_literal_truth():
    """Antecedent literals are recorded as the assignments made (true form)."""
    formula = CnfFormula([[1, 2]])  # deciding -1 implies 2
    solver = Solver(formula)
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(encode_literal(-1), None)
    solver._propagate()
    graph = ImplicationGraph.from_solver(solver)
    assert graph.nodes[2].antecedents == [-1]
