"""Basic behaviour of the CDCL engine: trivial formulas, budgets,
incrementality, assumptions, model verification."""

import pytest

from repro.cnf.formula import CnfFormula
from repro.solver import (
    SolveStatus,
    Solver,
    berkmin_config,
    solve_formula,
)


def test_empty_formula_is_sat():
    result = Solver(CnfFormula()).solve()
    assert result.status is SolveStatus.SAT
    assert result.model == {}


def test_empty_clause_is_unsat():
    formula = CnfFormula()
    formula.clauses.append([])
    result = Solver(formula).solve()
    assert result.status is SolveStatus.UNSAT


def test_single_unit():
    result = Solver(CnfFormula([[3]])).solve()
    assert result.status is SolveStatus.SAT
    assert result.model[3] is True


def test_contradictory_units():
    result = Solver(CnfFormula([[1], [-1]])).solve()
    assert result.status is SolveStatus.UNSAT


def test_tiny_unsat():
    formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    result = Solver(formula).solve()
    assert result.status is SolveStatus.UNSAT


def test_tautology_only_formula_is_sat():
    result = Solver(CnfFormula([[1, -1]])).solve()
    assert result.status is SolveStatus.SAT


def test_duplicate_literals_are_handled():
    result = Solver(CnfFormula([[1, 1, 1], [-1, -1]])).solve()
    assert result.status is SolveStatus.UNSAT


def test_model_satisfies_formula():
    formula = CnfFormula([[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]])
    result = Solver(formula).solve()
    assert result.status is SolveStatus.SAT
    assert formula.evaluate(result.model)


def test_solve_formula_wrapper():
    result = solve_formula(CnfFormula([[1]]))
    assert result.is_sat


def test_conflict_budget_yields_unknown():
    from repro.generators.pigeonhole import pigeonhole_formula

    result = Solver(pigeonhole_formula(6)).solve(max_conflicts=5)
    assert result.status is SolveStatus.UNKNOWN
    assert result.limit_reason == "conflict budget"


def test_decision_budget_yields_unknown():
    from repro.generators.pigeonhole import pigeonhole_formula

    result = Solver(pigeonhole_formula(6)).solve(max_decisions=2)
    assert result.status is SolveStatus.UNKNOWN
    assert result.limit_reason == "decision budget"


def test_status_is_not_boolean():
    with pytest.raises(TypeError):
        bool(SolveStatus.SAT)


def test_incremental_clause_addition():
    solver = Solver(CnfFormula([[1, 2]]))
    assert solver.solve().is_sat
    solver.add_clause([-1])
    result = solver.solve()
    assert result.is_sat
    assert result.model[2] is True
    solver.add_clause([-2])
    assert solver.solve().is_unsat
    # Once refuted, the solver stays refuted.
    assert solver.solve().is_unsat


def test_incremental_learned_clauses_persist():
    from repro.generators.pigeonhole import pigeonhole_formula

    solver = Solver(pigeonhole_formula(5))
    first = solver.solve()
    assert first.is_unsat
    # Conflicts already counted; a second call returns immediately.
    conflicts_before = solver.stats.conflicts
    second = solver.solve()
    assert second.is_unsat
    assert solver.stats.conflicts == conflicts_before


def test_assumptions_sat_and_unsat():
    solver = Solver(CnfFormula([[1, 2], [-1, 2]]))
    result = solver.solve(assumptions=[-2])
    assert result.is_unsat
    assert result.under_assumptions
    # The formula itself is still satisfiable afterwards.
    result = solver.solve()
    assert result.is_sat
    result = solver.solve(assumptions=[1])
    assert result.is_sat
    assert result.model[1] is True


def test_assumptions_respected_in_model():
    formula = CnfFormula([[1, 2, 3]])
    result = Solver(formula).solve(assumptions=[-1, -2])
    assert result.is_sat
    assert result.model[1] is False
    assert result.model[2] is False
    assert result.model[3] is True


def test_assumption_on_fresh_variable():
    solver = Solver(CnfFormula([[1]]))
    result = solver.solve(assumptions=[5])
    assert result.is_sat
    assert result.model[5] is True


def test_conflicting_assumptions():
    solver = Solver(CnfFormula([[1, 2]]))
    result = solver.solve(assumptions=[1, -1])
    assert result.is_unsat
    assert result.under_assumptions


def test_stats_accumulate():
    formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    solver = Solver(formula, config=berkmin_config())
    result = solver.solve()
    assert result.stats.conflicts >= 1
    assert result.stats.initial_clauses == 4
    assert result.stats.solve_time_seconds > 0


def test_add_formula_after_construction():
    solver = Solver()
    formula = CnfFormula([[1, 2], [-2]])
    assert solver.add_formula(formula)
    result = solver.solve()
    assert result.is_sat
    assert result.model[1] is True
