"""Phase-selection heuristics: symmetrization and nb_two (Section 7)."""

import pytest

from repro.cnf.clause import Clause
from repro.cnf.formula import CnfFormula
from repro.cnf.literals import encode_literal
from repro.solver import Solver
from repro.solver.config import (
    berkmin_config,
    sat_top_config,
    take_0_config,
    take_1_config,
    unsat_top_config,
)
from repro.solver.phase import formula_literal, nb_two, top_clause_literal


def _clause(*dimacs):
    return Clause([encode_literal(lit) for lit in dimacs], learned=True)


def test_symmetrize_prefers_lagging_literal():
    """The paper's example: lit_activity(c)=3 < lit_activity(~c)=5 -> branch c=0."""
    solver = Solver(CnfFormula([[1, 2, 3]]))
    variable = 3
    solver.lit_activity[encode_literal(3)] = 3
    solver.lit_activity[encode_literal(-3)] = 5
    literal = top_clause_literal(solver, variable, _clause(1, 2, 3))
    assert literal == encode_literal(-3)  # c = 0 explored first

    solver.lit_activity[encode_literal(3)] = 9
    literal = top_clause_literal(solver, variable, _clause(1, 2, 3))
    assert literal == encode_literal(3)  # now c = 1 explored first


def test_symmetrize_tie_is_random_but_seeded():
    values = set()
    for seed in range(8):
        solver = Solver(CnfFormula([[1]]), config=berkmin_config(seed=seed))
        values.add(top_clause_literal(solver, 1, _clause(1)))
    assert values == {encode_literal(1), encode_literal(-1)}


def test_sat_top_and_unsat_top():
    solver = Solver(CnfFormula([[1, 2]]), config=sat_top_config())
    clause = _clause(1, -2)
    assert top_clause_literal(solver, 2, clause) == encode_literal(-2)
    solver.config = unsat_top_config()
    assert top_clause_literal(solver, 2, clause) == encode_literal(2)


def test_take_0_and_take_1():
    solver = Solver(CnfFormula([[1, 2]]), config=take_0_config())
    assert top_clause_literal(solver, 1, _clause(1, 2)) == encode_literal(-1)
    solver.config = take_1_config()
    assert top_clause_literal(solver, 1, _clause(1, 2)) == encode_literal(1)


def test_unknown_heuristic_raises():
    solver = Solver(CnfFormula([[1]]))
    solver.config = berkmin_config(top_clause_phase="nope")
    with pytest.raises(ValueError):
        top_clause_literal(solver, 1, _clause(1))
    solver.config = berkmin_config(formula_phase="nope")
    with pytest.raises(ValueError):
        formula_literal(solver, 1)


def test_nb_two_counts_neighbourhood():
    """nb_two(l) = #bin(l) + sum over (l v v) of #bin(~v)."""
    formula = CnfFormula(
        [
            [1, 2],  # binary with 1
            [1, 3],  # binary with 1
            [-2, 4],  # binary with ~2 (neighbour through [1, 2])
            [-2, 5],
            [-3, 6],
            [1, 2, 3],  # ternary: ignored by nb_two
        ]
    )
    solver = Solver(formula)
    score = nb_two(solver, encode_literal(1))
    # 2 binaries with literal 1, plus #bin(~2) = 2 and #bin(~3) = 1.
    assert score == 2 + 2 + 1


def test_nb_two_threshold_stops_early():
    formula = CnfFormula([[1, other] for other in range(2, 40)])
    solver = Solver(formula, config=berkmin_config(nb_two_threshold=10))
    score = nb_two(solver, encode_literal(1))
    assert score > 10  # stopped soon after crossing the threshold
    assert score < 80


def test_formula_literal_falsifies_higher_nb_two():
    formula = CnfFormula(
        [
            [1, 2],
            [1, 3],
            [1, 4],  # literal 1 has a rich binary neighbourhood
            [-2, 5],
            [-3, 5],
            [2, 3, 4, 5],
        ]
    )
    solver = Solver(formula)
    literal = formula_literal(solver, 1)
    # nb_two(1) > nb_two(-1), so literal 1 is set to 0: enqueue -1.
    assert literal == encode_literal(-1)


def test_formula_phase_fixed_variants():
    solver = Solver(CnfFormula([[1, 2]]), config=berkmin_config(formula_phase="take_0"))
    assert formula_literal(solver, 1) == encode_literal(-1)
    solver.config = berkmin_config(formula_phase="take_1")
    assert formula_literal(solver, 1) == encode_literal(1)


def test_formula_phase_random_is_seeded():
    values = set()
    for seed in range(8):
        solver = Solver(
            CnfFormula([[1]]),
            config=berkmin_config(formula_phase="take_rand", seed=seed),
        )
        values.add(formula_literal(solver, 1))
    assert values == {encode_literal(1), encode_literal(-1)}


def test_nb_two_tie_breaks_randomly_but_seeded():
    # Symmetric binary neighbourhoods for both phases of variable 1.
    formula = CnfFormula([[1, 2], [-1, 3]])
    first = Solver(formula, config=berkmin_config(seed=3))
    second = Solver(formula, config=berkmin_config(seed=3))
    assert formula_literal(first, 1) == formula_literal(second, 1)


def test_learned_binary_clauses_feed_nb_two():
    solver = Solver(CnfFormula([[1, 2, 3]]))
    before = nb_two(solver, encode_literal(1))
    clause = _clause(1, -2)
    solver.learned.append(clause)
    solver.attach_clause(clause)
    after = nb_two(solver, encode_literal(1))
    assert after == before + 1
