"""Model enumeration and counting."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf.formula import CnfFormula
from repro.solver.enumeration import count_models, enumerate_models


def _brute_count(formula, projection=None):
    n = formula.num_variables
    seen = set()
    for bits in itertools.product((False, True), repeat=n):
        model = {v: bits[v - 1] for v in range(1, n + 1)}
        if formula.evaluate(model):
            if projection is None:
                seen.add(bits)
            else:
                seen.add(tuple(model[v] for v in projection))
    return len(seen)


def test_enumerate_all_models_of_small_formula():
    formula = CnfFormula([[1, 2]])
    models = list(enumerate_models(formula))
    assert len(models) == 3
    for model in models:
        assert formula.evaluate(model)
    assert len({tuple(sorted(m.items())) for m in models}) == 3


def test_unsat_formula_yields_nothing():
    formula = CnfFormula([[1], [-1]])
    assert list(enumerate_models(formula)) == []


def test_limit_caps_output():
    formula = CnfFormula([[1, 2, 3]])
    assert len(list(enumerate_models(formula, limit=2))) == 2


def test_projection_counts_patterns_once():
    # Variable 3 is free, so full enumeration has twice the projected count.
    formula = CnfFormula([[1, 2]], num_variables=3)
    assert count_models(formula, project_onto=[1, 2]) == 3
    assert count_models(formula) == 6


def test_projection_validation():
    formula = CnfFormula([[1, 2]])
    with pytest.raises(ValueError):
        list(enumerate_models(formula, project_onto=[0]))
    with pytest.raises(ValueError):
        list(enumerate_models(formula, project_onto=[9]))


def test_budget_exhaustion_raises():
    from repro.generators.pigeonhole import pigeonhole_formula

    with pytest.raises(RuntimeError):
        list(enumerate_models(pigeonhole_formula(7), max_conflicts_per_call=2))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=10,
    )
)
def test_count_matches_brute_force(clauses):
    formula = CnfFormula(clauses)
    assert count_models(formula) == _brute_count(formula)


def test_projected_count_matches_brute_force():
    rng = random.Random(4)
    for _ in range(15):
        n = rng.randint(2, 5)
        clauses = [
            [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(2, n))]
            for _ in range(rng.randint(1, 8))
        ]
        formula = CnfFormula(clauses, num_variables=n)
        projection = sorted(rng.sample(range(1, n + 1), rng.randint(1, n)))
        assert count_models(formula, project_onto=projection) == _brute_count(
            formula, projection
        )


def test_known_counts():
    from repro.generators.queens import queens_formula

    # 8-queens has 92 solutions; a classic.
    assert count_models(queens_formula(6)) == 4
