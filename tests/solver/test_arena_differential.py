"""Differential gate: arena engine vs the split object engine.

The arena engine runs inprocessing (bounded variable elimination plus
arena compaction), so its search *trajectory* legitimately diverges from
the object engines — conflict and decision counts are not comparable.
What must hold is the answer-level contract: on any formula both engines
return the same status, every SAT model verifies against the original
formula (``solve()`` checks this by default, and eliminated-variable
reconstruction makes it non-trivial for the arena), and every UNSAT
answer carries a proof that RUP-checks — the trusted-results gate the
parallel engines apply to untrusted workers.

The pool is 50 pinned formulas across mixed families, with restart and
inprocessing intervals cranked low so elimination, learned-clause
sweeps, and arena GC all fire mid-search on the non-trivial instances.
"""

from __future__ import annotations

import random

from repro.cnf.formula import CnfFormula
from repro.generators import (
    pigeonhole_formula,
    planted_ksat,
    random_ksat,
    random_xor_system,
    xor_system_formula,
)
from repro.reliability.verify import verify_result
from repro.solver.config import berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver


def _random_soup(rng: random.Random) -> CnfFormula:
    """A small random formula with clause lengths 1..5 (mixed SAT/UNSAT)."""
    n = rng.randint(4, 12)
    clauses = []
    for _ in range(rng.randint(5, 45)):
        arity = min(rng.randint(1, 5), n)
        variables = rng.sample(range(1, n + 1), arity)
        clauses.append([v * rng.choice((1, -1)) for v in variables])
    return CnfFormula(clauses, num_variables=n)


def _parity(nv: int, ne: int, seed: int, planted: bool) -> CnfFormula:
    return xor_system_formula(random_xor_system(nv, ne, 3, seed=seed, planted=planted))


def _pool() -> list[tuple[str, CnfFormula]]:
    rng = random.Random(20260808)
    formulas = [(f"soup{i}", _random_soup(rng)) for i in range(30)]
    formulas += [(f"hole{n}", pigeonhole_formula(n)) for n in (3, 4, 5)]
    formulas += [(f"parity_sat{s}", _parity(10, 10, s, True)) for s in (1, 2, 3, 4)]
    formulas += [(f"parity_unsat{s}", _parity(8, 16, s, False)) for s in (1, 2, 3, 4)]
    formulas += [(f"ksat{s}", random_ksat(25, 106, 3, seed=s)) for s in range(5)]
    formulas += [(f"planted{s}", planted_ksat(30, 120, 3, seed=s)) for s in range(4)]
    return formulas


def test_arena_vs_split_identical_answers_with_trusted_gate():
    pool = _pool()
    assert len(pool) == 50
    for name, formula in pool:
        statuses = {}
        for mode in ("split", "arena"):
            solver = Solver(
                formula,
                config=berkmin_config(
                    propagation=mode,
                    restart_interval=20,
                    inprocess_interval=2,
                    proof_logging=True,
                ),
            )
            result = solver.solve()  # verify=True: raises on an invalid model
            assert result.status is not SolveStatus.UNKNOWN, name
            # The same gate the parallel layer applies to worker answers:
            # model check for SAT, RUP proof check for UNSAT.
            verified = verify_result(formula, result)
            assert verified in ("model", "proof"), (name, mode, verified)
            statuses[mode] = result.status
        assert statuses["split"] is statuses["arena"], (
            f"{name}: engines disagree — split {statuses['split'].name} "
            f"vs arena {statuses['arena'].name}"
        )
