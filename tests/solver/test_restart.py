"""Restart policies and the scheduler."""

import pytest

from repro.solver.config import berkmin_config
from repro.solver.restart import RestartScheduler, luby


def test_luby_prefix():
    expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
    assert [luby(i) for i in range(1, 16)] == expected


def test_luby_rejects_zero():
    with pytest.raises(ValueError):
        luby(0)


def test_luby_values_are_powers_of_two():
    for index in range(1, 200):
        value = luby(index)
        assert value & (value - 1) == 0


def test_fixed_schedule():
    scheduler = RestartScheduler(berkmin_config(restart_interval=550))
    assert scheduler.current_interval == 550
    assert not scheduler.should_restart(549)
    assert scheduler.should_restart(550)
    scheduler.on_restart()
    assert scheduler.current_interval == 550  # fixed stays fixed


def test_geometric_schedule_grows():
    config = berkmin_config(
        restart_strategy="geometric", restart_interval=100, restart_geometric_factor=2.0
    )
    scheduler = RestartScheduler(config)
    intervals = []
    for _ in range(4):
        intervals.append(scheduler.current_interval)
        scheduler.on_restart()
    assert intervals == [100, 200, 400, 800]


def test_luby_schedule_follows_sequence():
    config = berkmin_config(restart_strategy="luby", luby_unit=10)
    scheduler = RestartScheduler(config)
    intervals = []
    for _ in range(7):
        intervals.append(scheduler.current_interval)
        scheduler.on_restart()
    assert intervals == [10, 10, 20, 10, 10, 20, 40]


def test_none_schedule_never_restarts():
    scheduler = RestartScheduler(berkmin_config(restart_strategy="none"))
    assert not scheduler.should_restart(10**9)


def test_unknown_strategy_raises():
    with pytest.raises(ValueError):
        RestartScheduler(berkmin_config(restart_strategy="bogus"))


def test_restarts_happen_and_stay_correct():
    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.solver.solver import Solver

    solver = Solver(pigeonhole_formula(6), config=berkmin_config(restart_interval=50))
    result = solver.solve()
    assert result.is_unsat
    assert solver.stats.restarts > 0
    assert solver.stats.db_reductions == solver.stats.restarts


def test_all_restart_strategies_agree_on_answers():
    from repro.baselines.brute import brute_force_satisfiable
    from repro.cnf.formula import CnfFormula
    from repro.solver.solver import Solver
    import random

    rng = random.Random(11)
    for _ in range(20):
        n = rng.randint(2, 7)
        clauses = [
            [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(3, n))]
            for _ in range(rng.randint(3, 20))
        ]
        formula = CnfFormula(clauses, num_variables=n)
        expected = brute_force_satisfiable(formula)
        for strategy in ("fixed", "geometric", "luby", "none"):
            config = berkmin_config(restart_strategy=strategy, restart_interval=5, luby_unit=5)
            result = Solver(formula, config=config).solve()
            assert result.is_sat == expected, strategy
