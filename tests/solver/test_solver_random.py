"""Property-based correctness: every configuration agrees with brute force.

This is the single most important test in the repository: the paper's
experiments only make sense if every configuration (BerkMin, each
ablation, the Chaff baseline) is a *correct* SAT solver.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.solver import SolveStatus, Solver
from repro.solver.config import CONFIG_FACTORIES, config_by_name

clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=7).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=120, deadline=None)
@given(clauses_strategy, st.sampled_from(["berkmin", "chaff", "less_mobility", "unsat_top"]))
def test_solver_matches_brute_force(clauses, config_name):
    formula = CnfFormula(clauses)
    expected = brute_force_satisfiable(formula)
    config = config_by_name(config_name, restart_interval=7, activity_decay_interval=8)
    result = Solver(formula, config=config).solve()
    assert (result.status is SolveStatus.SAT) == expected
    if result.is_sat:
        assert formula.evaluate(result.model)


@pytest.mark.parametrize("config_name", sorted(CONFIG_FACTORIES))
def test_every_config_on_randomized_batch(config_name):
    """Seeded batch across *all* configurations (cheaper than hypothesis x11)."""
    rng = random.Random(hash(config_name) & 0xFFFF)
    config = config_by_name(config_name, restart_interval=6, activity_decay_interval=8)
    for _ in range(60):
        num_variables = rng.randint(1, 8)
        clauses = []
        for _ in range(rng.randint(1, 24)):
            arity = min(rng.randint(1, 3), num_variables)
            variables = rng.sample(range(1, num_variables + 1), arity)
            clauses.append([v * rng.choice((1, -1)) for v in variables])
        formula = CnfFormula(clauses, num_variables=num_variables)
        expected = brute_force_satisfiable(formula)
        result = Solver(formula, config=config).solve()
        assert (result.status is SolveStatus.SAT) == expected
        if result.is_sat:
            assert formula.evaluate(result.model)


@settings(max_examples=40, deadline=None)
@given(clauses_strategy, st.integers(0, 2**16))
def test_seeds_do_not_change_answers(clauses, seed):
    formula = CnfFormula(clauses)
    base = Solver(formula, config=config_by_name("berkmin", seed=0)).solve()
    other = Solver(formula, config=config_by_name("berkmin", seed=seed)).solve()
    assert base.status is other.status


@settings(max_examples=30, deadline=None)
@given(clauses_strategy)
def test_assumption_results_are_consistent(clauses):
    """solve(assumptions=[l]) must agree with solving formula + unit l."""
    formula = CnfFormula(clauses)
    literal = 1
    augmented = formula.copy()
    augmented.add_clause([literal])
    expected = brute_force_satisfiable(augmented)
    result = Solver(formula).solve(assumptions=[literal])
    assert (result.status is SolveStatus.SAT) == expected


@settings(max_examples=30, deadline=None)
@given(clauses_strategy)
def test_clause_minimization_preserves_answers(clauses):
    formula = CnfFormula(clauses)
    expected = brute_force_satisfiable(formula)
    config = config_by_name(
        "berkmin", clause_minimization=True, restart_interval=7, activity_decay_interval=8
    )
    result = Solver(formula, config=config).solve()
    assert (result.status is SolveStatus.SAT) == expected
