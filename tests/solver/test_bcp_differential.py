"""Differential BCP coverage: split binary-implication engine vs the
watched-literal reference.

The two propagation engines (``config.propagation = "split" | "general"``)
are designed to propagate in the *same order*, so on any formula they must
return the same status, valid models (``solve()`` verifies models by
default and raises on a bad one), and identical conflict/decision/
propagation counts.  This test sweeps ~50 seeded small formulas across
mixed families — random clause soups, pigeonhole, planted and
inconsistent parity systems, uniform and planted 3-SAT — with a restart
interval low enough that database reductions (and the index rebuilds they
trigger) happen mid-search.
"""

from __future__ import annotations

import random

from repro.cnf.formula import CnfFormula
from repro.generators import (
    pigeonhole_formula,
    planted_ksat,
    random_ksat,
    random_xor_system,
    xor_system_formula,
)
from repro.solver.config import berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver


def _random_soup(rng: random.Random) -> CnfFormula:
    """A small random formula with clause lengths 1..5 (mixed SAT/UNSAT)."""
    n = rng.randint(4, 12)
    clauses = []
    for _ in range(rng.randint(5, 45)):
        arity = min(rng.randint(1, 5), n)
        variables = rng.sample(range(1, n + 1), arity)
        clauses.append([v * rng.choice((1, -1)) for v in variables])
    return CnfFormula(clauses, num_variables=n)


def _parity(nv: int, ne: int, seed: int, planted: bool) -> CnfFormula:
    return xor_system_formula(random_xor_system(nv, ne, 3, seed=seed, planted=planted))


def _suite() -> list[tuple[str, CnfFormula]]:
    rng = random.Random(20260806)
    formulas = [(f"soup{i}", _random_soup(rng)) for i in range(30)]
    formulas += [(f"hole{n}", pigeonhole_formula(n)) for n in (3, 4, 5)]
    formulas += [(f"parity_sat{s}", _parity(10, 10, s, True)) for s in (1, 2, 3, 4)]
    formulas += [(f"parity_unsat{s}", _parity(8, 16, s, False)) for s in (1, 2, 3, 4)]
    formulas += [(f"ksat{s}", random_ksat(25, 106, 3, seed=s)) for s in range(5)]
    formulas += [(f"planted{s}", planted_ksat(30, 120, 3, seed=s)) for s in range(4)]
    return formulas


def test_split_vs_general_identical_search():
    suite = _suite()
    assert len(suite) == 50
    for name, formula in suite:
        outcomes = {}
        for mode in ("split", "general"):
            solver = Solver(
                formula,
                config=berkmin_config(propagation=mode, restart_interval=20),
            )
            result = solver.solve()  # verify=True: raises on an invalid model
            assert result.status is not SolveStatus.UNKNOWN, name
            outcomes[mode] = (
                result.status,
                result.stats.conflicts,
                result.stats.decisions,
                result.stats.propagations,
            )
        assert outcomes["split"] == outcomes["general"], (
            f"{name}: engines diverged — split {outcomes['split']} "
            f"vs general {outcomes['general']}"
        )
