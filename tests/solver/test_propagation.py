"""BCP and watched-literal invariants."""

import random

from repro.cnf.formula import CnfFormula
from repro.cnf.literals import FALSE, TRUE, UNASSIGNED
from repro.solver import Solver
from repro.solver.config import berkmin_config


def test_unit_clauses_are_asserted_at_load_time():
    """add_clause reduces against level-0 assignments eagerly."""
    formula = CnfFormula([[1], [-1, 2], [-2, 3], [-3, 4]])
    solver = Solver(formula)
    for variable in (1, 2, 3, 4):
        assert solver.assigns[variable] == TRUE
    assert solver.clauses == []  # everything satisfied at level 0


def test_unit_chain_propagates():
    formula = CnfFormula([[-1, 2], [-2, 3], [-3, 4]])
    solver = Solver(formula)
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(2 * 1, None)  # decide 1 = True
    assert solver._propagate() is None
    for variable in (1, 2, 3, 4):
        assert solver.assigns[variable] == TRUE
    assert solver.stats.propagations >= 3


def test_conflict_is_detected():
    formula = CnfFormula([[-1, 2], [-1, -2]])
    solver = Solver(formula)
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(2 * 1, None)  # decide 1 = True
    conflict = solver._propagate()
    assert conflict is not None
    falsified = [solver._value(lit) for lit in conflict.literals]
    assert all(value == FALSE for value in falsified)


def test_contradictory_units_refute_at_load_time():
    solver = Solver(CnfFormula([[1], [-1, 2], [-2]]))
    assert not solver.ok


def test_propagation_respects_decision():
    formula = CnfFormula([[-1, 2], [-2, 3]])
    solver = Solver(formula)
    assert solver._propagate() is None
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(2 * 1, None)  # decide 1 = True
    assert solver._propagate() is None
    assert solver.assigns[2] == TRUE
    assert solver.assigns[3] == TRUE
    assert solver.levels[3] == 1


def _check_watch_invariants(solver):
    """Long clauses are watched by their first two literals; binary clauses
    appear exactly once in each of their literals' implication arrays."""
    from collections import Counter

    watched = Counter()
    for literal, clauses in enumerate(solver.watches):
        for clause in clauses:
            assert literal in clause.literals[:2], "watch not on first two literals"
            watched[id(clause)] += 1
    binary_in_watches = solver.config.propagation == "general"
    expected_entries = Counter()  # (falsified literal -> implied literal) edges
    for clause in solver.clauses + solver.learned:
        if clause.is_binary:
            first, second = clause.literals
            expected_entries[(first, second)] += 1
            expected_entries[(second, first)] += 1
            expected_watches = 2 if binary_in_watches else 0
            assert watched[id(clause)] == expected_watches
        else:
            assert watched[id(clause)] == 2, "clause must have exactly two watches"
    actual_entries = Counter(
        (literal, implied)
        for literal, implied_list in enumerate(solver.binary_implications)
        for implied in implied_list
    )
    assert actual_entries == expected_entries
    # binary_count is the per-literal total of implication entries (and, in
    # general mode, the length of the binary prefix of each watch list).
    for literal in range(len(solver.binary_count)):
        assert solver.binary_count[literal] == len(solver.binary_implications[literal])


def test_watch_invariants_after_solving():
    rng = random.Random(7)
    for mode in ("split", "general"):
        for _ in range(25):
            n = rng.randint(2, 9)
            clauses = []
            for _ in range(rng.randint(2, 30)):
                arity = min(rng.randint(2, 4), n)
                variables = rng.sample(range(1, n + 1), arity)
                clauses.append([v * rng.choice((1, -1)) for v in variables])
            solver = Solver(
                CnfFormula(clauses, num_variables=n),
                config=berkmin_config(restart_interval=5, propagation=mode),
            )
            solver.solve()
            _check_watch_invariants(solver)


def test_trail_is_consistent_after_backtrack():
    formula = CnfFormula([[-1, 2], [-2, 3], [4, 5]])
    solver = Solver(formula)
    solver._propagate()
    solver.trail_limits.append(len(solver.trail))
    solver._enqueue(2, None)  # 1 = True
    solver._propagate()
    assert solver.current_level() == 1
    solver._backtrack(0)
    assert solver.current_level() == 0
    assert solver.trail == []
    for variable in range(1, 6):
        assert solver.assigns[variable] == UNASSIGNED
        assert solver.reasons[variable] is None
    assert solver.qhead == 0


def test_binary_occurrence_maps_track_attachments():
    formula = CnfFormula([[1, 2], [-1, 3], [1, 2, 3]])
    solver = Solver(formula)
    # Two binary clauses -> four directed entries.
    positive_one = 2
    assert solver.binary_count[positive_one] == 1
    negative_one = 3
    assert solver.binary_count[negative_one] == 1
    total_entries = sum(solver.binary_count)
    assert total_entries == 4


def test_satisfied_clause_is_skipped_on_load():
    solver = Solver(CnfFormula([[1]]))
    solver._propagate()
    before = len(solver.clauses)
    solver.add_clause([1, 2])  # satisfied at level 0: not stored
    assert len(solver.clauses) == before


def test_false_literals_removed_on_load():
    solver = Solver(CnfFormula([[1]]))
    solver._propagate()
    solver.add_clause([-1, 2, 3])
    stored = solver.clauses[-1]
    assert len(stored) == 2  # -1 stripped
