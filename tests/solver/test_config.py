"""Configuration presets and the registry."""

import pytest

from repro.solver.config import (
    CONFIG_FACTORIES,
    SolverConfig,
    berkmin_config,
    chaff_config,
    config_by_name,
    less_mobility_config,
    less_sensitivity_config,
    limited_keeping_config,
)


def test_default_is_berkmin_with_paper_constants():
    config = berkmin_config()
    assert config.name == "berkmin"
    assert config.bump_responsible_clauses
    assert config.decision_strategy == "berkmin"
    assert config.top_clause_phase == "symmetrize"
    assert config.formula_phase == "nb_two"
    # Section 8's explicit constants.
    assert config.young_length_limit == 42
    assert config.young_activity_limit == 7
    assert config.old_length_limit == 8
    assert config.old_activity_threshold == 60
    assert config.young_fraction == pytest.approx(15 / 16)
    # Section 7's nb_two threshold.
    assert config.nb_two_threshold == 100


def test_less_sensitivity_only_changes_bumping():
    base = berkmin_config()
    variant = less_sensitivity_config()
    assert not variant.bump_responsible_clauses
    assert variant.decision_strategy == base.decision_strategy
    assert variant.db_management == base.db_management


def test_less_mobility_only_changes_decision():
    variant = less_mobility_config()
    assert variant.decision_strategy == "global"
    assert variant.bump_responsible_clauses  # activities stay BerkMin-style


def test_chaff_preset_shape():
    config = chaff_config()
    assert config.decision_strategy == "vsids"
    assert not config.bump_responsible_clauses
    assert config.db_management == "limited_keeping"
    assert config.activity_decay_divisor == 2


def test_limited_keeping_threshold_matches_paper():
    assert limited_keeping_config().limited_keeping_length == 42


def test_registry_contains_all_paper_configs():
    for name in (
        "berkmin",
        "less_sensitivity",
        "less_mobility",
        "sat_top",
        "unsat_top",
        "take_0",
        "take_1",
        "take_rand",
        "limited_keeping",
        "chaff",
    ):
        assert name in CONFIG_FACTORIES
        assert config_by_name(name).name == name


def test_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown configuration"):
        config_by_name("minisat")


def test_with_overrides_returns_copy():
    base = berkmin_config()
    changed = base.with_overrides(restart_interval=99)
    assert changed.restart_interval == 99
    assert base.restart_interval == 550
    assert isinstance(changed, SolverConfig)


def test_factory_overrides():
    config = config_by_name("chaff", seed=7, restart_interval=12)
    assert config.seed == 7
    assert config.restart_interval == 12
    assert config.name == "chaff"


def test_replace_is_with_overrides():
    base = berkmin_config()
    changed = base.replace(seed=5, restart_interval=42)
    assert (changed.seed, changed.restart_interval) == (5, 42)
    assert base.seed == 0
    assert changed.name == base.name
    assert isinstance(changed, SolverConfig)


def test_positional_construction_warns_but_works():
    with pytest.warns(DeprecationWarning, match="keyword"):
        config = SolverConfig("legacy")
    assert config.name == "legacy"
    # Keyword construction stays silent.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        SolverConfig(name="modern")


def test_positional_construction_rejects_duplicates():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="name"):
            SolverConfig("twice", name="again")
