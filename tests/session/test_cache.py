"""AnswerCache semantics: exact, core-subsumption, and model-reuse hits."""

from repro.session import AnswerCache, SolverSession
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.stats import SolverStats

FP = "a" * 32
OTHER_FP = "b" * 32


def _sat_result(model, verified=None):
    return SolveResult(status=SolveStatus.SAT, model=model, stats=SolverStats(),
                       verified=verified)


def _unsat_result(core=None, under=False):
    return SolveResult(status=SolveStatus.UNSAT, stats=SolverStats(),
                       under_assumptions=under, core=core)


def test_exact_hit_roundtrips_the_answer():
    cache = AnswerCache()
    assert cache.lookup(FP, [1, 2]) is None
    cache.store(FP, [1, 2], _sat_result({1: True, 2: True}))
    kind, stored = cache.lookup(FP, [2, 1])  # assumption order is canonical
    assert kind == "exact"
    assert stored["status"] is SolveStatus.SAT
    assert stored["model"] == {1: True, 2: True}
    assert cache.hits == 1 and cache.misses == 1
    assert cache.lookup(OTHER_FP, [1, 2]) is None  # other formulas miss


def test_core_subsumption_answers_assumption_supersets():
    cache = AnswerCache()
    cache.store(FP, [1, -3], _unsat_result(core=[1, -3], under=True))
    kind, stored = cache.lookup(FP, [1, -3, 5, -7])
    assert kind == "core"
    assert stored["status"] is SolveStatus.UNSAT
    assert sorted(stored["core"]) == [-3, 1]
    # A disjoint assumption set is NOT subsumed.
    assert cache.lookup(FP, [2, 4]) is None


def test_outright_unsat_subsumes_every_assumption_set():
    cache = AnswerCache()
    cache.store(FP, [], _unsat_result())
    for assumptions in ([], [5], [-1, 2, 9]):
        kind, stored = cache.lookup(FP, assumptions)
        assert kind in ("exact", "core")
        assert stored["status"] is SolveStatus.UNSAT


def test_model_reuse_requires_satisfied_assumptions():
    cache = AnswerCache()
    cache.store(FP, [], _sat_result({1: True, 2: False}, verified="model"))
    kind, stored = cache.lookup(FP, [1, -2])
    assert kind == "model"
    assert stored["verified"] == "model"
    # The cached model falsifies assumption 2 -> no hit.
    assert cache.lookup(FP, [2]) is None


def test_unknown_results_are_never_cached():
    cache = AnswerCache()
    unknown = SolveResult(status=SolveStatus.UNKNOWN, stats=SolverStats(),
                          limit_reason="max_conflicts")
    assert cache.store(FP, [], unknown) is False
    assert len(cache) == 0
    assert cache.lookup(FP, []) is None


def test_lemma_store_caps_and_roundtrips():
    cache = AnswerCache(max_lemmas=3)
    cache.store_lemmas(FP, [((1, 2), 1), ((2, 3), 2), ((3, 4), 3), ((4, 5), 4)])
    lemmas = cache.lemmas_for(FP)
    assert len(lemmas) == 3
    assert lemmas[-1] == ((4, 5), 4)
    assert cache.lemmas_for(OTHER_FP) == []


def test_exact_entries_are_bounded():
    cache = AnswerCache(max_entries=4)
    for variable in range(1, 10):
        cache.store(FP, [variable], _sat_result({variable: True}))
    assert len(cache) <= 4


def test_shared_cache_carries_answers_between_sessions():
    clauses = [[1, 2], [-1, 2]]
    cache = AnswerCache()
    with SolverSession(clauses, cache=cache) as first:
        first.solve(assumptions=[-1])
    with SolverSession(clauses, cache=cache) as second:
        result = second.solve(assumptions=[-1])
        assert result.status is SolveStatus.SAT
        assert second.stats.cache_hits == 1
    summary = cache.summary()
    assert summary["hits"] == 1
    assert summary["entries"] == 1
    assert summary["formulas"] == 1


def test_shared_cache_lemma_import_warm_starts_sessions():
    from repro.generators import queens_formula

    formula = queens_formula(8)
    cache = AnswerCache()
    with SolverSession(formula, cache=cache) as first:
        first.solve()
        learned = len(first.solver.learned)
    assert learned > 0
    with SolverSession(formula, cache=cache) as warm:
        # Lemmas import at construction, before any solving.
        assert len(warm.solver.learned) > 0
        assert warm.stats.retained_clauses > 0


def test_lru_eviction_spares_recently_used_entries():
    cache = AnswerCache(max_entries=3)
    for variable in (1, 2, 3):
        cache.store(FP, [variable], _sat_result({variable: True}))
    # Refresh entry [1]; entry [2] is now the least recently used.
    assert cache.lookup(FP, [1]) is not None
    cache.store(FP, [4], _sat_result({4: True}))
    assert cache.lookup(FP, [1])[0] == "exact"
    assert cache.evictions == 1
    # [2]'s exact slot is gone (model-reuse may still answer it).
    assert (FP, (2,)) not in cache._exact


def test_byte_budget_evicts_oldest_payloads():
    cache = AnswerCache(max_entries=1000, max_bytes=700)
    for variable in range(1, 8):
        cache.store(
            "fp-%d" % variable, [], _sat_result({v: True for v in range(1, 20)})
        )
    assert cache.bytes <= 700
    assert cache.evictions >= 1
    assert len(cache) < 7


def test_eviction_counters_mirror_into_session_stats():
    cache = AnswerCache(max_entries=1)
    with SolverSession([[1, 2]], cache=cache) as session:
        session.solve(assumptions=[1])
        session.solve(assumptions=[2])  # evicts the first exact entry
    assert cache.evictions >= 1
    assert session.stats.cache_evictions == cache.evictions
