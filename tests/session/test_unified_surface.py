"""One contract, four entry points: assumptions= everywhere.

solve_formula, Solver.solve, solve_batch, and PortfolioSolver.solve all
accept ``assumptions=`` and return :class:`SolveResult` with the same
field set — including ``core`` and ``num_assumptions`` — so callers can
move between the sequential, batch, and portfolio engines (and the
session layer they are now built on) without changing result handling.
"""

import dataclasses

import pytest

from repro.cnf.formula import CnfFormula
from repro.parallel import PortfolioSolver, solve_batch
from repro.solver.config import berkmin_config, chaff_config
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.solver import Solver, solve_formula

# x1 != x2, x2 != x3: SAT, but UNSAT when x1 and x3 are assumed apart.
CHAIN = [[1, 2], [-1, -2], [2, 3], [-2, -3]]
FAILING = (1, -3)


def _formula():
    return CnfFormula([list(clause) for clause in CHAIN])


def _check_unsat_surface(result):
    assert isinstance(result, SolveResult)
    assert result.status is SolveStatus.UNSAT
    assert result.under_assumptions is True
    assert result.num_assumptions == len(FAILING)
    assert result.core is not None
    assert set(result.core) <= set(FAILING)
    assert "core=" in repr(result)


def test_solve_formula_accepts_assumptions():
    _check_unsat_surface(solve_formula(_formula(), assumptions=FAILING))
    sat = solve_formula(_formula(), assumptions=(1,))
    assert sat.status is SolveStatus.SAT
    assert sat.num_assumptions == 1
    assert sat.model[1] is True


def test_solver_solve_accepts_assumptions():
    _check_unsat_surface(Solver(_formula()).solve(FAILING))


def test_solve_batch_accepts_assumptions():
    batch = solve_batch([_formula(), _formula()], jobs=2, assumptions=FAILING)
    for result in batch.results:
        _check_unsat_surface(result)


def test_portfolio_accepts_assumptions():
    portfolio = PortfolioSolver([berkmin_config(), chaff_config()], jobs=2)
    _check_unsat_surface(portfolio.solve(_formula(), assumptions=FAILING))


def test_result_field_set_is_identical_across_engines():
    fields = {field.name for field in dataclasses.fields(SolveResult)}
    sequential = solve_formula(_formula(), assumptions=FAILING)
    batch = solve_batch([_formula()], assumptions=FAILING).results[0]
    for result in (sequential, batch):
        assert {f.name for f in dataclasses.fields(result)} == fields


def test_solve_formula_is_a_session_wrapper():
    # The one-shot path goes through SolverSession (one call, no cache),
    # so session counters tick exactly once.
    result = solve_formula(_formula())
    assert result.stats.session_calls == 1
    assert result.stats.cache_hits == 0
