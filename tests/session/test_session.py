"""Lifecycle, retention, and snapshot behavior of SolverSession."""

import pytest

from repro.checkpoint.snapshot import canonical_fingerprint
from repro.cnf.formula import CnfFormula
from repro.observability import RingBufferSink
from repro.session import (
    DEFAULT_RETAIN_MAX_LBD,
    AnswerCache,
    SessionClosedError,
    SolverSession,
)
from repro.solver.config import berkmin_config, config_by_name
from repro.solver.result import SolveStatus

XOR_CHAIN = [
    [1, 2], [-1, -2],          # x1 != x2
    [2, 3], [-2, -3],          # x2 != x3
]


def test_session_basic_sat_then_unsat_growth():
    with SolverSession([[1, 2]]) as session:
        first = session.solve()
        assert first.status is SolveStatus.SAT
        assert first.model[1] or first.model[2]
        session.add_clause([-2])
        second = session.solve()
        assert second.status is SolveStatus.SAT
        assert second.model == {1: True, 2: False}
        session.add_clause([-1])
        third = session.solve()
        assert third.status is SolveStatus.UNSAT
        assert session.calls == 3
        assert session.stats.session_calls == 3


def test_unsat_core_under_assumptions():
    with SolverSession(XOR_CHAIN) as session:
        result = session.solve(assumptions=[1, -3])
        assert result.status is SolveStatus.UNSAT
        core = session.unsat_core()
        assert core is not None
        assert set(core) <= {1, -3}
        # The core is sound: the formula plus the core alone is UNSAT.
        check = CnfFormula([list(c) for c in XOR_CHAIN] + [[lit] for lit in core])
        with SolverSession(check, cache=None) as oracle:
            assert oracle.solve().status is SolveStatus.UNSAT
        # And the same query stays answerable after the formula grows.
        session.add_clause([1, 2, 3])
        again = session.solve(assumptions=[1, -3])
        assert again.status is SolveStatus.UNSAT


def test_closed_session_raises():
    session = SolverSession([[1]])
    session.close()
    with pytest.raises(SessionClosedError):
        session.add_clause([2])
    with pytest.raises(SessionClosedError):
        session.solve()


def test_fingerprint_is_order_insensitive_and_invalidated():
    fp_a = canonical_fingerprint([[1, 2], [-1, 3]])
    fp_b = canonical_fingerprint([[3, -1], [2, 1]])
    assert fp_a == fp_b
    # Duplicate clauses must not cancel out (a XOR-combined hash would).
    assert canonical_fingerprint([[1, 2], [1, 2]]) != canonical_fingerprint([[1, 2]])
    with SolverSession([[1, 2]]) as session:
        before = session.fingerprint
        session.add_clause([-1, 3])
        assert session.fingerprint != before
        assert session.fingerprint == fp_a


def test_retention_filters_by_lbd(queens_clauses):
    config = berkmin_config()
    with SolverSession(queens_clauses, config, cache=None, retain_max_lbd=0) as strict:
        strict.solve()
        strict_kept = len(strict.solver.learned)
        strict_dropped = strict.stats.learned_deleted
    with SolverSession(queens_clauses, config, cache=None, retain_max_lbd=None) as lax:
        lax.solve()
        lax_kept = len(lax.solver.learned)
    # Same config and seed, so both runs learn the same stack;
    # retain_max_lbd=None then keeps everything while 0 keeps only the
    # unmeasured/protected/topmost clauses.
    assert strict_kept < lax_kept
    assert strict_kept + strict_dropped == lax_kept
    assert lax.stats.retained_clauses == lax_kept
    assert lax.stats.learned_deleted == 0


def test_retention_skipped_once_refuted():
    from repro.generators import pigeonhole_formula

    with SolverSession(pigeonhole_formula(5), cache=None, retain_max_lbd=0) as session:
        assert session.solve().status is SolveStatus.UNSAT
        # Outright refutation: nothing is filtered (the session is spent
        # anyway) and re-querying still answers UNSAT.
        assert session.stats.learned_deleted == 0
        assert session.solve().status is SolveStatus.UNSAT


def test_retention_keeps_solver_reusable(queens_clauses):
    with SolverSession(queens_clauses, cache=None, retain_max_lbd=0) as session:
        first = session.solve()
        assert first.status is SolveStatus.SAT
        # Pin one queen placement from the model; the shrunken learned
        # stack must still support a correct re-solve.
        anchor = next(var for var, value in sorted(first.model.items()) if value)
        session.add_clause([anchor])
        second = session.solve()
        assert second.status is SolveStatus.SAT
        assert second.model[anchor] is True
        assert session.stats.session_calls == 2


def test_session_save_load_roundtrip(tmp_path):
    path = tmp_path / "session.rsck"
    with SolverSession(XOR_CHAIN, config_by_name("berkmin")) as session:
        assert session.solve(assumptions=[1]).status is SolveStatus.SAT
        session.save(path)
    resumed = SolverSession.load(path)
    try:
        assert resumed.calls == 1
        assert resumed.config.name == "berkmin"
        assert resumed.retain_max_lbd == DEFAULT_RETAIN_MAX_LBD
        assert resumed.solve(assumptions=[1]).status is SolveStatus.SAT
        assert resumed.solve(assumptions=[1, -3]).status is SolveStatus.UNSAT
    finally:
        resumed.close()


def test_session_trace_events():
    sink = RingBufferSink(256)
    config = berkmin_config(trace=sink)
    cache = AnswerCache()
    with SolverSession(XOR_CHAIN, config, cache=cache) as session:
        session.solve(assumptions=[1])
        session.solve(assumptions=[1])  # exact cache hit
    kinds = [event["type"] for event in sink.events]
    assert kinds[0] == "session_start"
    solves = [event for event in sink.events if event["type"] == "session_solve"]
    assert [event["served_by"] for event in solves] == ["search", "exact"]
    assert all(event["assumptions"] == 1 for event in solves)


def test_result_repr_shows_assumptions_and_core():
    with SolverSession(XOR_CHAIN, cache=None) as session:
        result = session.solve(assumptions=[1, -3])
    text = repr(result)
    assert "assumptions=2" in text
    assert "core=" in text
    sat = SolverSession(XOR_CHAIN, cache=None).solve()
    assert "assumptions=" not in repr(sat)
    assert "core=" not in repr(sat)


@pytest.fixture
def queens_clauses():
    from repro.generators import queens_formula

    return queens_formula(8)
