"""Differential suite: incremental sessions vs fresh one-shot solves.

The ISSUE's correctness contract for the session layer: with learned
clauses retained and the answer cache live, every query in a stream
must answer exactly what a cold one-shot solve of the same clause set
under the same assumptions answers — over the pinned audit pool and
over a BMC-style depth sweep — with cache hits accounted for and UNSAT
cores checked through the trusted-results gate.
"""

import random

import pytest

from repro.cnf.formula import CnfFormula
from repro.reliability.audit import _instance_pool, _session_stream
from repro.session import AnswerCache, SolverSession
from repro.solver.config import VERIFY_SAT, berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import solve_formula


@pytest.mark.parametrize("entry", _instance_pool(), ids=lambda e: e[0])
def test_session_matches_one_shot_over_audit_pool(entry):
    name, formula, expected = entry
    rng = random.Random(hash(name) & 0xFFFF)
    steps = _session_stream(formula, rng, num_solves=4)
    with SolverSession(retain_max_lbd=4) as session:
        accumulated = []
        for clauses, assumptions in steps:
            accumulated.extend(clauses)
            session.add_clauses(clauses)
            result = session.solve(assumptions)
            reference = solve_formula(
                CnfFormula([list(c) for c in accumulated]), assumptions=assumptions
            )
            assert result.status is reference.status, (
                f"{name}: session {result.status} vs one-shot {reference.status} "
                f"under {assumptions}"
            )
        # The final step carries the full formula with no assumptions.
        assert result.status is expected


def test_cache_hits_and_misses_are_counted():
    clauses = [[1, 2], [-1, 2], [1, -2]]
    cache = AnswerCache()
    with SolverSession(clauses, cache=cache) as session:
        session.solve()          # miss -> search
        session.solve()          # exact hit
        session.solve([2])       # model-reuse hit (model satisfies 2)
        session.solve([-2])      # miss -> search (UNSAT under -2? no: 2 forced)
        assert session.stats.session_calls == 4
        assert session.stats.cache_hits == 2
    assert cache.misses == 2
    assert cache.hits == 2


def test_unsat_cores_pass_the_trusted_gate():
    """Every cached/fresh core is sound: formula AND core is UNSAT."""
    pool = _instance_pool()
    rng = random.Random(7)
    for name, formula, _ in pool:
        variables = sorted(formula.variables())
        assumptions = [
            variable if rng.random() < 0.5 else -variable
            for variable in rng.sample(variables, min(4, len(variables)))
        ]
        with SolverSession(formula, config=berkmin_config(verification=VERIFY_SAT)) as session:
            result = session.solve(assumptions)
            if result.status is not SolveStatus.UNSAT:
                assert result.verified == "model", f"{name}: SAT answer unverified"
                continue
            core = session.unsat_core()
            if core is None:
                # Refuted outright (no assumption failed): the formula
                # alone must be UNSAT.
                assert solve_formula(formula).status is SolveStatus.UNSAT
                continue
            assert set(core) <= set(assumptions), f"{name}: core outside assumptions"
            check = CnfFormula(
                [list(clause) for clause in formula.clauses]
                + [[literal] for literal in core]
            )
            assert solve_formula(check).status is SolveStatus.UNSAT, (
                f"{name}: core {core} does not refute with the formula"
            )


def test_bmc_depth_sweep_matches_one_shot_and_ground_truth():
    from repro.bench import SessionBenchCase, run_session_case

    row = run_session_case(
        SessionBenchCase("counter3_t5_en", 3, 5, 7), rounds=2
    )
    # run_session_case raises BenchAgreementError on any divergence; a
    # returned row is the agreement evidence plus the served-by split.
    assert row["statuses"] == ["UNSAT"] * 5 + ["SAT"] * 3
    assert row["session"]["served_by_cache"] == 8   # round 2 is all cache
    assert row["session"]["served_by_search"] == 8
    assert row["queries"] == 16
