"""End-to-end CLI tests (invoking main() with argv)."""

import pytest

from repro.cli import main
from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file
from repro.cnf.formula import CnfFormula
from repro.generators.pigeonhole import pigeonhole_formula


def _write(tmp_path, formula, name="f.cnf"):
    path = tmp_path / name
    write_dimacs_file(formula, path)
    return str(path)


def test_solve_sat_prints_model(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path])
    captured = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in captured
    assert "v " in captured
    model_line = next(l for l in captured.splitlines() if l.startswith("v "))
    literals = [int(tok) for tok in model_line[2:].split()]
    assert literals[-1] == 0
    assert -1 in literals and 2 in literals


def test_solve_unsat_with_proof_and_stats(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", path, "--proof", "--stats"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "c proof verified (RUP)" in captured
    assert "c conflicts =" in captured


def test_solve_unknown_on_budget(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(7))
    code = main(["solve", path, "--max-conflicts", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "s UNKNOWN" in captured


def test_solve_with_each_config(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1, 2]]))
    for config in ("berkmin", "chaff", "less_mobility"):
        assert main(["solve", path, "--config", config]) == 10


@pytest.mark.parametrize(
    "family,args",
    [
        ("hole", ["--size", "4"]),
        ("hanoi", ["--size", "2"]),
        ("queens", ["--size", "5"]),
        ("xor", ["--size", "8", "--extra", "6"]),
        ("ksat", ["--size", "10"]),
        ("adder", ["--size", "3"]),
        ("pipe", ["--size", "3", "--extra", "1"]),
        ("sudoku", []),
    ],
)
def test_generate_families(tmp_path, capsys, family, args):
    out = str(tmp_path / f"{family}.cnf")
    code = main(["generate", family, "-o", out] + args)
    assert code == 0
    formula = parse_dimacs_file(out)
    assert formula.num_clauses > 0
    assert "wrote" in capsys.readouterr().out


def test_generated_instance_solves(tmp_path, capsys):
    out = str(tmp_path / "hole.cnf")
    main(["generate", "hole", "--size", "4", "-o", out])
    capsys.readouterr()
    assert main(["solve", out]) == 20


def test_experiment_quick(capsys):
    code = main(["experiment", "table3", "--scale", "quick"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Table 3" in captured


def test_solve_with_preprocessing_sat(tmp_path, capsys):
    from repro.generators.random_ksat import planted_ksat

    formula = planted_ksat(20, 70, 3, seed=9)
    path = _write(tmp_path, formula)
    code = main(["solve", path, "--preprocess"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c preprocessing:" in captured
    model_line = next(l for l in captured.splitlines() if l.startswith("v "))
    model = {abs(int(t)): int(t) > 0 for t in model_line[2:].split() if t != "0"}
    assert formula.evaluate(model)


def test_solve_with_preprocessing_unsat(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    code = main(["solve", path, "--preprocess"])
    assert code == 20
    assert "s UNSATISFIABLE" in capsys.readouterr().out


def test_solve_portfolio_unsat(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", path, "--portfolio", "--jobs", "2"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "winner:" in captured


def test_solve_jobs_implies_portfolio(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path, "--jobs", "2"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c portfolio of 2 configs" in captured
    assert "s SATISFIABLE" in captured


def test_solve_portfolio_verifies_proof(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    code = main(["solve", path, "--portfolio", "--jobs", "2", "--proof"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "c answer verified (proof)" in captured


def test_solve_verify_sat_model(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path, "--verify", "sat"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c answer verified (model)" in captured


def test_batch_with_verification_and_retries(tmp_path, capsys):
    sat = _write(tmp_path, CnfFormula([[1, 2], [-1]]), "sat.cnf")
    unsat = _write(tmp_path, pigeonhole_formula(4), "unsat.cnf")
    code = main(["batch", sat, unsat, "--jobs", "2", "--proof", "--retries", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "[verified: model]" in captured
    assert "[verified: proof]" in captured


def test_audit_quick(capsys):
    code = main(["audit", "--rounds", "2", "--seed", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "audit PASS: 2 rounds" in captured


def test_batch_command(tmp_path, capsys):
    sat = _write(tmp_path, CnfFormula([[1, 2], [-1]]), "sat.cnf")
    unsat = _write(tmp_path, pigeonhole_formula(4), "unsat.cnf")
    code = main(["batch", sat, unsat, "--jobs", "2", "--stats"])
    captured = capsys.readouterr().out
    assert code == 0
    assert f"{sat}: SAT" in captured
    assert f"{unsat}: UNSAT" in captured
    assert "c batch: 2 files, 1 sat, 1 unsat, 0 unknown" in captured
    assert "c conflicts =" in captured


def test_batch_unknown_gives_nonzero_exit(tmp_path, capsys):
    hard = _write(tmp_path, pigeonhole_formula(8), "hard.cnf")
    code = main(["batch", hard, "--max-conflicts", "5"])
    captured = capsys.readouterr().out
    assert code == 1
    assert "UNKNOWN (conflict budget)" in captured


def test_atpg_command(capsys):
    code = main(["atpg", "--inputs", "4", "--gates", "8", "--seed", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "coverage" in captured
    assert "faults 16" in captured


def test_bmc_command_sat_and_unsat(capsys):
    assert main(["bmc", "--bits", "3", "--target", "5", "--bound", "5"]) == 10
    assert "BAD" in capsys.readouterr().out
    assert main(["bmc", "--bits", "3", "--target", "5", "--bound", "4"]) == 20
    assert "UNSAT" in capsys.readouterr().out


def test_bad_arguments_exit():
    with pytest.raises(SystemExit):
        main(["solve"])
    with pytest.raises(SystemExit):
        main(["generate", "nonsense", "-o", "x"])
