"""End-to-end CLI tests (invoking main() with argv)."""

import json

import pytest

from repro.cli import main
from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file
from repro.cnf.formula import CnfFormula
from repro.generators.pigeonhole import pigeonhole_formula


def _write(tmp_path, formula, name="f.cnf"):
    path = tmp_path / name
    write_dimacs_file(formula, path)
    return str(path)


def test_solve_sat_prints_model(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path])
    captured = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in captured
    assert "v " in captured
    model_line = next(l for l in captured.splitlines() if l.startswith("v "))
    literals = [int(tok) for tok in model_line[2:].split()]
    assert literals[-1] == 0
    assert -1 in literals and 2 in literals


def test_solve_unsat_with_proof_and_stats(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", path, "--proof", "--stats"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "c proof verified (RUP)" in captured
    assert "c conflicts =" in captured


def test_solve_unknown_on_budget(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(7))
    code = main(["solve", path, "--max-conflicts", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "s UNKNOWN" in captured


def test_solve_with_each_config(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1, 2]]))
    for config in ("berkmin", "chaff", "less_mobility"):
        assert main(["solve", path, "--config", config]) == 10


@pytest.mark.parametrize(
    "family,args",
    [
        ("hole", ["--size", "4"]),
        ("hanoi", ["--size", "2"]),
        ("queens", ["--size", "5"]),
        ("xor", ["--size", "8", "--extra", "6"]),
        ("ksat", ["--size", "10"]),
        ("adder", ["--size", "3"]),
        ("pipe", ["--size", "3", "--extra", "1"]),
        ("sudoku", []),
    ],
)
def test_generate_families(tmp_path, capsys, family, args):
    out = str(tmp_path / f"{family}.cnf")
    code = main(["generate", family, "-o", out] + args)
    assert code == 0
    formula = parse_dimacs_file(out)
    assert formula.num_clauses > 0
    assert "wrote" in capsys.readouterr().out


def test_generated_instance_solves(tmp_path, capsys):
    out = str(tmp_path / "hole.cnf")
    main(["generate", "hole", "--size", "4", "-o", out])
    capsys.readouterr()
    assert main(["solve", out]) == 20


def test_experiment_quick(capsys):
    code = main(["experiment", "table3", "--scale", "quick"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Table 3" in captured


def test_solve_with_preprocessing_sat(tmp_path, capsys):
    from repro.generators.random_ksat import planted_ksat

    formula = planted_ksat(20, 70, 3, seed=9)
    path = _write(tmp_path, formula)
    code = main(["solve", path, "--preprocess"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c preprocessing:" in captured
    model_line = next(l for l in captured.splitlines() if l.startswith("v "))
    model = {abs(int(t)): int(t) > 0 for t in model_line[2:].split() if t != "0"}
    assert formula.evaluate(model)


def test_solve_with_preprocessing_unsat(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    code = main(["solve", path, "--preprocess"])
    assert code == 20
    assert "s UNSATISFIABLE" in capsys.readouterr().out


def test_solve_portfolio_unsat(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", path, "--portfolio", "--jobs", "2"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "winner:" in captured


def test_solve_jobs_implies_portfolio(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path, "--jobs", "2"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c portfolio of 2 configs" in captured
    assert "s SATISFIABLE" in captured


def test_solve_portfolio_verifies_proof(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    code = main(["solve", path, "--portfolio", "--jobs", "2", "--proof"])
    captured = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in captured
    assert "c answer verified (proof)" in captured


def test_solve_verify_sat_model(tmp_path, capsys):
    path = _write(tmp_path, CnfFormula([[1, 2], [-1]]))
    code = main(["solve", path, "--verify", "sat"])
    captured = capsys.readouterr().out
    assert code == 10
    assert "c answer verified (model)" in captured


def test_batch_with_verification_and_retries(tmp_path, capsys):
    sat = _write(tmp_path, CnfFormula([[1, 2], [-1]]), "sat.cnf")
    unsat = _write(tmp_path, pigeonhole_formula(4), "unsat.cnf")
    code = main(["batch", sat, unsat, "--jobs", "2", "--proof", "--retries", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "[verified: model]" in captured
    assert "[verified: proof]" in captured


def test_audit_quick(capsys):
    code = main(["audit", "--rounds", "2", "--seed", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "audit PASS: 2 rounds" in captured


def test_batch_command(tmp_path, capsys):
    sat = _write(tmp_path, CnfFormula([[1, 2], [-1]]), "sat.cnf")
    unsat = _write(tmp_path, pigeonhole_formula(4), "unsat.cnf")
    code = main(["batch", sat, unsat, "--jobs", "2", "--stats"])
    captured = capsys.readouterr().out
    assert code == 0
    assert f"{sat}: SAT" in captured
    assert f"{unsat}: UNSAT" in captured
    assert "c batch: 2 files, 1 sat, 1 unsat, 0 unknown" in captured
    assert "c conflicts =" in captured


def test_batch_unknown_gives_nonzero_exit(tmp_path, capsys):
    hard = _write(tmp_path, pigeonhole_formula(8), "hard.cnf")
    code = main(["batch", hard, "--max-conflicts", "5"])
    captured = capsys.readouterr().out
    assert code == 1
    assert "UNKNOWN (conflict budget)" in captured


def test_atpg_command(capsys):
    code = main(["atpg", "--inputs", "4", "--gates", "8", "--seed", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "coverage" in captured
    assert "faults 16" in captured


def test_bmc_command_sat_and_unsat(capsys):
    assert main(["bmc", "--bits", "3", "--target", "5", "--bound", "5"]) == 10
    assert "BAD" in capsys.readouterr().out
    assert main(["bmc", "--bits", "3", "--target", "5", "--bound", "4"]) == 20
    assert "UNSAT" in capsys.readouterr().out


def test_bad_arguments_exit():
    with pytest.raises(SystemExit):
        main(["solve"])
    with pytest.raises(SystemExit):
        main(["generate", "nonsense", "-o", "x"])


# ----------------------------------------------------------------------
# Error hygiene: operational failures are one-line diagnostics, exit 2
# ----------------------------------------------------------------------


def test_solve_missing_file_is_one_line_error(tmp_path, capsys):
    code = main(["solve", str(tmp_path / "absent.cnf")])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-sat: error:")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err


def test_solve_malformed_dimacs_is_one_line_error(tmp_path, capsys):
    path = tmp_path / "broken.cnf"
    path.write_text("p cnf 2 1\n1 nonsense 0\n")
    code = main(["solve", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-sat: error:")
    assert len(captured.err.strip().splitlines()) == 1


def test_batch_missing_file_is_one_line_error(tmp_path, capsys):
    present = _write(tmp_path, CnfFormula([[1]]), "ok.cnf")
    code = main(["batch", present, str(tmp_path / "absent.cnf")])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-sat: error:")


def test_unwritable_artifact_path_is_one_line_error(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    out = tmp_path / "no-such-dir" / "proof.drat"
    code = main(["solve", path, "--proof-out", str(out)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-sat: error:")


# ----------------------------------------------------------------------
# Checkpoint flags
# ----------------------------------------------------------------------


def test_solve_checkpoint_then_resume(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(6))
    ckpt = tmp_path / "run.ckpt"

    code = main(
        ["solve", path, "--checkpoint", str(ckpt), "--checkpoint-interval",
         "50", "--max-conflicts", "200"]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "s UNKNOWN" in captured
    assert f"c checkpoint written to {ckpt}" in captured
    assert ckpt.exists()

    code = main(["solve", path, "--checkpoint", str(ckpt)])
    captured = capsys.readouterr().out
    assert code == 20
    assert "c resumed from checkpoint" in captured
    assert "s UNSATISFIABLE" in captured
    assert not ckpt.exists()  # definite answer reconciles the file away


def test_solve_corrupt_checkpoint_degrades_to_cold_start(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    ckpt = tmp_path / "bad.ckpt"
    ckpt.write_bytes(b"RSCK not a real checkpoint")
    with pytest.warns(Warning):
        code = main(["solve", path, "--checkpoint", str(ckpt)])
    captured = capsys.readouterr().out
    assert code == 20
    assert "c resumed from checkpoint" not in captured
    assert "s UNSATISFIABLE" in captured


def test_solve_proof_out_writes_drat_file(tmp_path, capsys):
    path = _write(tmp_path, pigeonhole_formula(4))
    proof_path = tmp_path / "proof.drat"
    code = main(["solve", path, "--proof-out", str(proof_path)])
    captured = capsys.readouterr().out
    assert code == 20
    assert f"c proof written to {proof_path}" in captured
    lines = proof_path.read_text().strip().splitlines()
    assert lines[-1] == "0"  # final empty clause
    assert all(line.split()[-1] == "0" for line in lines)


def test_batch_checkpoint_dir(tmp_path, capsys):
    hard = _write(tmp_path, pigeonhole_formula(7), "hard.cnf")
    ckdir = tmp_path / "ck"
    code = main(
        ["batch", hard, "--checkpoint", str(ckdir), "--checkpoint-interval",
         "50", "--max-conflicts", "300"]
    )
    assert code == 1  # UNKNOWN on budget
    assert (ckdir / "instance-0000.ckpt").exists()
    capsys.readouterr()

    code = main(["batch", hard, "--checkpoint", str(ckdir)])
    captured = capsys.readouterr().out
    assert code == 0
    assert f"{hard}: UNSAT" in captured
    assert not (ckdir / "instance-0000.ckpt").exists()


def test_session_command_streams_queries(tmp_path, capsys):
    stream = tmp_path / "stream.icnf"
    stream.write_text(
        "p inccnf\n"
        "c x1 != x2, x2 != x3\n"
        "1 2 0\n-1 -2 0\n2 3 0\n-2 -3 0\n"
        "a 1 -3 0\n"       # UNSAT with core
        "a 1 0\n"          # SAT
        "a 1 -3 0\n"       # exact cache hit
    )
    code = main(["session", str(stream)])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("s UNSATISFIABLE") == 2
    assert out.count("s SATISFIABLE") == 1
    assert "c core" in out
    assert "1 cache hits" in out
    assert "c session: 3 queries" in out


def test_session_command_no_cache_and_trace(tmp_path, capsys):
    stream = tmp_path / "stream.icnf"
    stream.write_text("1 2 0\na -1 0\na -1 0\n")
    trace_path = tmp_path / "trace.jsonl"
    code = main(
        ["session", str(stream), "--no-cache", "--trace-out", str(trace_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "0 cache hits" in out
    lines = [line for line in trace_path.read_text().splitlines() if line]
    kinds = [json.loads(line)["type"] for line in lines]
    assert "session_start" in kinds
    assert kinds.count("session_solve") == 2


def test_session_command_rejects_malformed_stream(tmp_path, capsys):
    stream = tmp_path / "bad.icnf"
    stream.write_text("1 2\n")  # missing 0 terminator
    code = main(["session", str(stream)])
    err = capsys.readouterr().err
    assert code == 2
    assert "must end in 0" in err
