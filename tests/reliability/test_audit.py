"""The randomized audit: trusted answers under every fault plan."""

import pytest

from repro.reliability import run_audit
from repro.reliability.audit import AuditReport

pytestmark = pytest.mark.fault_injection


def test_audit_smoke_passes():
    report = run_audit(rounds=4, seed=11)
    assert isinstance(report, AuditReport)
    assert report.ok, "\n".join(report.failures)
    assert report.rounds == 4
    assert "PASS" in report.summary()


def test_audit_is_deterministic_in_shape():
    lines_a, lines_b = [], []
    run_audit(rounds=3, seed=2, log=lines_a.append)
    run_audit(rounds=3, seed=2, log=lines_b.append)
    # The same seed draws the same engines/faults/victims each time.
    assert [line.split(" ok")[0] for line in lines_a] == [
        line.split(" ok")[0] for line in lines_b
    ]


@pytest.mark.slow
def test_audit_full_hundred_rounds():
    report = run_audit(rounds=100, seed=0)
    assert report.ok, "\n".join(report.failures)
