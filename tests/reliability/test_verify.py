"""The trusted-results gate: model checks, proof checks, shape checks."""

import pytest

import repro
from repro.cnf.formula import CnfFormula
from repro.generators import pigeonhole_formula, planted_ksat
from repro.reliability.verify import (
    VerificationError,
    check_result_shape,
    verify_result,
)
from repro.solver.config import berkmin_config
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.solver import Solver


def test_honest_sat_model_verifies():
    formula = planted_ksat(15, 60, 3, seed=3)
    result = repro.solve(formula)
    assert result.status is SolveStatus.SAT
    assert verify_result(formula, result, "sat") == "model"
    assert verify_result(formula, result, "full") == "model"


def test_forged_sat_model_is_rejected():
    formula = CnfFormula([[1, 2], [-1, 2]])
    forged = SolveResult(status=SolveStatus.SAT, model={1: True, 2: False})
    with pytest.raises(VerificationError, match="does not satisfy"):
        verify_result(formula, forged, "sat")


def test_unsat_proof_verifies_at_full():
    formula = pigeonhole_formula(3)
    solver = Solver(formula, config=berkmin_config(proof_logging=True))
    result = solver.solve()
    assert result.status is SolveStatus.UNSAT
    assert verify_result(formula, result, "full") == "proof"
    # Level "sat" does not check UNSAT answers.
    assert verify_result(formula, result, "sat") is None


def test_unsat_without_proof_is_rejected_at_full():
    formula = pigeonhole_formula(3)
    result = Solver(formula).solve()
    assert result.status is SolveStatus.UNSAT and result.proof is None
    with pytest.raises(VerificationError, match="no proof"):
        verify_result(formula, result, "full")


def test_unsat_under_assumptions_passes_unchecked():
    formula = CnfFormula([[1, 2], [-1, 2]])
    solver = Solver(formula, config=berkmin_config(proof_logging=True))
    result = solver.solve(assumptions=[-2])
    assert result.status is SolveStatus.UNSAT and result.under_assumptions
    assert verify_result(formula, result, "full") is None


def test_level_off_and_unknown_levels():
    formula = CnfFormula([[1]])
    result = repro.solve(formula)
    assert verify_result(formula, result, "off") is None
    with pytest.raises(ValueError, match="verification level"):
        verify_result(formula, result, "paranoid")


def test_shape_checks():
    assert check_result_shape("not a result") is not None
    assert check_result_shape(SolveResult(status=SolveStatus.SAT)) is not None
    good = SolveResult(status=SolveStatus.SAT, model={1: True})
    assert check_result_shape(good) is None
    with pytest.raises(VerificationError):
        verify_result(CnfFormula([[1]]), "garbage", "sat")


def test_solve_formula_attaches_verified_tag():
    formula = planted_ksat(12, 48, 3, seed=9)
    config = berkmin_config(verification="full")
    result = repro.solve_formula(formula, config=config)
    assert result.status is SolveStatus.SAT
    assert result.verified == "model"
