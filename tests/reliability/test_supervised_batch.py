"""Supervised solve_batch: every fault mode, retry recovery, degradation."""

import pytest

from repro.generators import pigeonhole_formula, planted_ksat
from repro.parallel import solve_batch
from repro.reliability import FaultPlan, RetryPolicy
from repro.solver.result import SolveStatus

pytestmark = pytest.mark.fault_injection

#: A policy fast enough for tests: three attempts, near-zero backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01)


def _instances():
    return [pigeonhole_formula(3), planted_ksat(16, 64, 3, seed=4)]


def test_crash_is_retried_to_a_verified_answer():
    batch = solve_batch(
        _instances(),
        jobs=2,
        retry=FAST_RETRY,
        verification="full",
        fault_plan=FaultPlan.single("crash", worker=0),
    )
    assert batch.statuses() == [SolveStatus.UNSAT, SolveStatus.SAT]
    assert batch.all_verified
    assert batch.retries == 1
    assert batch.stats.worker_retries == 1
    history = batch[0].attempts
    assert [record.outcome for record in history] == [
        "worker crashed (exit 3)", "ok",
    ]
    assert history[0].attempt == 0 and history[1].attempt == 1
    assert history[0].seed != history[1].seed  # retries are reseeded
    # The healthy sibling solved on its first attempt.
    assert [record.outcome for record in batch[1].attempts] == ["ok"]


def test_signal_death_is_decoded_and_retried():
    batch = solve_batch(
        _instances(),
        jobs=2,
        retry=FAST_RETRY,
        fault_plan=FaultPlan.single("signal", worker=1),
    )
    assert batch.statuses() == [SolveStatus.UNSAT, SolveStatus.SAT]
    assert batch[1].attempts[0].outcome == "worker crashed (SIGKILL)"


def test_stalled_pipe_is_caught_by_the_watchdog():
    batch = solve_batch(
        _instances(),
        jobs=2,
        retry=FAST_RETRY,
        stall_seconds=0.5,
        fault_plan=FaultPlan.single("stall", worker=0, seconds=60),
    )
    assert batch.statuses() == [SolveStatus.UNSAT, SolveStatus.SAT]
    assert batch[0].attempts[0].outcome == "stalled (no heartbeat)"


def test_corrupted_result_is_rejected_and_retried():
    batch = solve_batch(
        _instances(),
        jobs=2,
        retry=FAST_RETRY,
        verification="full",
        fault_plan=FaultPlan.single("corrupt", worker=0),
    )
    assert batch.statuses() == [SolveStatus.UNSAT, SolveStatus.SAT]
    assert batch.all_verified
    first = batch[0].attempts[0]
    assert first.outcome == "corrupted result"
    assert "does not satisfy" in first.detail


def test_corruption_survives_unseen_without_verification():
    # The control experiment: with the gate off, the forged answer wins.
    batch = solve_batch(
        [pigeonhole_formula(3)],
        jobs=1,
        verification="off",
        fault_plan=FaultPlan.single("corrupt", worker=0),
    )
    assert batch[0].status is SolveStatus.SAT  # a lie nothing checked


def test_hang_past_timeout_degrades_without_retry():
    batch = solve_batch(
        [pigeonhole_formula(3)],
        jobs=1,
        timeout=0.5,
        retry=FAST_RETRY,
        fault_plan=FaultPlan.single("hang", worker=0, seconds=60),
    )
    assert batch[0].status is SolveStatus.UNKNOWN
    assert batch[0].limit_reason == "time budget"
    assert batch[0].wall_seconds >= 0.5  # real elapsed time, not 0.0
    assert [record.outcome for record in batch[0].attempts] == ["time budget"]


def test_exhausted_retries_degrade_with_full_history():
    plan = FaultPlan(
        specs=tuple(
            FaultPlan.single("crash", worker=0, attempt=attempt).specs[0]
            for attempt in range(3)
        )
    )
    batch = solve_batch(
        [pigeonhole_formula(3)],
        jobs=1,
        retry=FAST_RETRY,
        fault_plan=plan,
    )
    assert batch[0].status is SolveStatus.UNKNOWN
    assert batch[0].limit_reason == "worker crashed (exit 3)"
    assert len(batch[0].attempts) == 3
    assert batch.retries == 2  # two relaunches after the first attempt


def test_env_driven_fault_plan_reaches_workers(monkeypatch):
    from repro.reliability.faults import FAULT_PLAN_ENV

    plan = FaultPlan.single("crash", worker=0)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    batch = solve_batch([pigeonhole_formula(3)], jobs=1, retry=FAST_RETRY)
    assert batch[0].status is SolveStatus.UNSAT
    assert batch[0].attempts[0].outcome.startswith("worker crashed")


def test_memory_budget_degrades_in_worker():
    batch = solve_batch(
        [pigeonhole_formula(7)],
        jobs=1,
        max_clauses=50,  # tiny database ceiling: trips immediately
    )
    assert batch[0].status is SolveStatus.UNKNOWN
    assert batch[0].limit_reason == "memory budget"
