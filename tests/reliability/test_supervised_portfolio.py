"""Supervised PortfolioSolver: lane retries, verified winners, degradation."""

import pytest

from repro.generators import pigeonhole_formula, planted_ksat
from repro.parallel import PortfolioSolver
from repro.reliability import FaultPlan, FaultSpec, RetryPolicy
from repro.solver.result import SolveStatus

pytestmark = pytest.mark.fault_injection

FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01)


def test_single_lane_portfolio_recovers_from_crash():
    portfolio = PortfolioSolver(
        ["berkmin"],
        retry=FAST_RETRY,
        verification="full",
        fault_plan=FaultPlan.single("crash", worker=0),
    )
    result = portfolio.solve(pigeonhole_formula(3))
    assert result.status is SolveStatus.UNSAT
    assert result.verified == "proof"
    assert result.stats.worker_retries == 1
    assert [record.outcome for record in result.attempts] == [
        "worker crashed (exit 3)", "ok",
    ]


def test_corrupt_winner_is_rejected_and_race_continues():
    # Lane 0 forges a SAT answer for an UNSAT formula on every attempt;
    # the gate must reject it every time and let lane 1 win honestly.
    plan = FaultPlan(
        specs=tuple(
            FaultSpec(mode="corrupt", worker=0, attempt=attempt)
            for attempt in range(3)
        )
    )
    portfolio = PortfolioSolver(
        ["berkmin", "chaff"],
        retry=FAST_RETRY,
        verification="full",
        fault_plan=plan,
    )
    result = portfolio.solve(pigeonhole_formula(3))
    assert result.status is SolveStatus.UNSAT
    assert result.verified == "proof"
    assert result.config_name == "chaff"


def test_stalled_lane_is_caught_and_retried():
    portfolio = PortfolioSolver(
        ["berkmin"],
        retry=FAST_RETRY,
        stall_seconds=0.5,
        fault_plan=FaultPlan.single("stall", worker=0, seconds=60),
    )
    result = portfolio.solve(pigeonhole_formula(3))
    assert result.status is SolveStatus.UNSAT
    assert result.attempts[0].outcome == "stalled (no heartbeat)"


def test_all_lanes_dead_past_retries_reports_history():
    plan = FaultPlan(
        specs=tuple(
            FaultSpec(mode="crash", worker=worker, attempt=attempt)
            for worker in range(2)
            for attempt in range(2)
        )
    )
    portfolio = PortfolioSolver(
        ["berkmin", "chaff"],
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
        fault_plan=plan,
    )
    result = portfolio.solve(pigeonhole_formula(3))
    assert result.status is SolveStatus.UNKNOWN
    assert result.limit_reason.startswith("worker crashed")
    assert len(result.attempts) == 4  # 2 lanes x 2 attempts, all on record
    assert result.stats.worker_retries == 2


def test_winner_is_verified_when_gate_is_on():
    formula = planted_ksat(16, 64, 3, seed=5)
    result = PortfolioSolver(jobs=2, verification="sat").solve(formula)
    assert result.status is SolveStatus.SAT
    assert result.verified == "model"
