"""FaultPlan/FaultSpec: validation, matching, serialization, corruption."""

import signal

import pytest

from repro.cnf.formula import CnfFormula
from repro.reliability.faults import (
    FAULT_MODES,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    corrupt_result,
)
from repro.solver.result import SolveResult, SolveStatus


def test_fault_modes_are_closed():
    assert set(FAULT_MODES) == {
        "crash",
        "signal",
        "hang",
        "corrupt",
        "stall",
        "corrupt_share",
    }
    with pytest.raises(ValueError):
        FaultSpec(mode="explode")


def test_spec_matches_worker_and_attempt():
    spec = FaultSpec(mode="crash", worker=2, attempt=1)
    assert spec.matches(2, 1)
    assert not spec.matches(2, 0)
    assert not spec.matches(0, 1)


def test_single_plan_lookup():
    plan = FaultPlan.single("hang", worker=1, seconds=5.0)
    assert plan.lookup(1, 0) is not None
    assert plan.lookup(1, 0).mode == "hang"
    assert plan.lookup(1, 0).seconds == 5.0
    assert plan.lookup(0, 0) is None
    assert plan.lookup(1, 1) is None  # faults are per-attempt: retries run clean


def test_json_roundtrip():
    plan = FaultPlan(
        specs=(
            FaultSpec(mode="signal", worker=0, signum=int(signal.SIGTERM)),
            FaultSpec(mode="corrupt", worker=3, attempt=2),
        )
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan


def test_from_env(monkeypatch):
    plan = FaultPlan.single("crash", worker=4)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    assert FaultPlan.from_env() == plan
    monkeypatch.delenv(FAULT_PLAN_ENV)
    assert FaultPlan.from_env() is None


def test_from_env_ignores_garbage(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
    assert FaultPlan.from_env() is None


def test_corrupt_result_falsifies_the_formula():
    formula = CnfFormula([[1, 2], [-1, 2], [-2, 3]])
    honest = SolveResult(status=SolveStatus.UNSAT)
    corrupted = corrupt_result(honest, formula)
    assert corrupted.status is SolveStatus.SAT
    assert isinstance(corrupted.model, dict)
    # The forged model must NOT satisfy the formula, or the trusted-results
    # gate would have nothing to catch.
    assert not formula.evaluate(corrupted.model)
