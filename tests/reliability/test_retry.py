"""RetryPolicy: attempt accounting, backoff schedule, reseeding."""

import pytest

from repro.reliability.retry import (
    NO_RETRY,
    RESEED_STRIDE,
    RetryPolicy,
    as_retry_policy,
)
from repro.solver.config import berkmin_config


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_allows_counts_total_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.allows(1) and policy.allows(2)
    assert not policy.allows(3)
    assert not NO_RETRY.allows(1)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, max_backoff=0.35)
    assert policy.delay(0) == 0.0
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.35)  # capped
    assert policy.delay(10) == pytest.approx(0.35)


def test_reseeding_is_deterministic_and_distinct():
    policy = RetryPolicy(reseed=True)
    config = berkmin_config(seed=5)
    assert policy.config_for_attempt(config, 0) is config  # first launch untouched
    second = policy.config_for_attempt(config, 1)
    third = policy.config_for_attempt(config, 2)
    assert second.seed == 5 + RESEED_STRIDE
    assert third.seed == 5 + 2 * RESEED_STRIDE
    assert second.name == config.name  # same heuristics, different dice
    # Deterministic: the same attempt always gets the same seed.
    assert policy.config_for_attempt(config, 1).seed == second.seed


def test_reseed_can_be_disabled():
    policy = RetryPolicy(reseed=False)
    config = berkmin_config(seed=5)
    assert policy.config_for_attempt(config, 3).seed == 5


def test_as_retry_policy_conversions():
    assert as_retry_policy(None) is NO_RETRY
    assert as_retry_policy(4).max_attempts == 4
    policy = RetryPolicy(max_attempts=2)
    assert as_retry_policy(policy) is policy
    with pytest.raises(TypeError):
        as_retry_policy("twice")
