"""Resource guards: crash decoding, stall clock, memory ceiling."""

import signal

from repro.reliability.guards import StallClock, apply_memory_limit, crash_reason


class _Beat:
    """Stand-in for a multiprocessing.Value('d')."""

    def __init__(self, value):
        self.value = value


def test_crash_reason_decodes_signals():
    assert crash_reason(-int(signal.SIGKILL)) == "worker crashed (SIGKILL)"
    assert crash_reason(-int(signal.SIGTERM)) == "worker crashed (SIGTERM)"
    assert crash_reason(-int(signal.SIGSEGV)) == "worker crashed (SIGSEGV)"


def test_crash_reason_plain_exit_codes():
    assert crash_reason(3) == "worker crashed (exit 3)"
    assert crash_reason(None) == "worker crashed"
    assert crash_reason(0) == "worker crashed"
    assert crash_reason(-990) == "worker crashed (signal 990)"  # not a real signal


def test_stall_clock_without_heartbeat_counts_from_launch():
    clock = StallClock(launch=100.0)
    assert not clock.stalled_for(100.4, 0.5)
    assert clock.stalled_for(100.6, 0.5)
    assert not clock.stalled_for(1000.0, None)  # watchdog disabled


def test_stall_clock_heartbeat_resets_the_window():
    beat = _Beat(100.0)
    clock = StallClock(launch=100.0, heartbeat=beat)
    assert clock.stalled_for(100.6, 0.5)
    beat.value = 100.55
    assert not clock.stalled_for(100.6, 0.5)
    assert clock.last_signal() == 100.55


def test_apply_memory_limit_rejects_nonpositive():
    assert apply_memory_limit(0) is False
    assert apply_memory_limit(-5) is False
    assert apply_memory_limit(None) is False


def test_apply_memory_limit_is_effective_in_a_subprocess():
    # Run in a child so the parent's address space is never limited.
    import multiprocessing

    context = multiprocessing.get_context()
    queue = context.Queue()
    process = context.Process(target=_allocate_under_limit, args=(queue,))
    process.start()
    process.join(timeout=30)
    assert queue.get(timeout=5) == "MemoryError"


def _current_vsz_mb():
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[0])
        import os

        return pages * os.sysconf("SC_PAGE_SIZE") // (1024 * 1024)
    except (OSError, ValueError, AttributeError):  # pragma: no cover
        return None


def _allocate_under_limit(queue):
    # The ceiling must sit above whatever address space the child already
    # inherited (a forked pytest process can be large), but far below the
    # 1 GiB allocation we are about to attempt.
    current = _current_vsz_mb()
    applied = current is not None and apply_memory_limit(current + 128)
    if not applied:  # pragma: no cover - platform without RLIMIT_AS or /proc
        queue.put("MemoryError")
        return
    try:
        block = bytearray(1024 * 1024 * 1024)  # 1 GiB >> the 128 MiB headroom
        queue.put(f"allocated {len(block)}")
    except MemoryError:
        queue.put("MemoryError")
