"""Kill/interrupt a solve mid-search, resume, and get the same answer.

This file carries the PR's acceptance criteria:

* **kill-resume equivalence** — on every pinned audit instance, a solve
  killed mid-search and resumed from its last checkpoint returns the
  same SAT/UNSAT answer as an uninterrupted run (process-level SIGKILL
  through the supervised batch engine, and in-process interrupts for
  the cheap matrix);
* **learned state demonstrably retained** — on a pinned hard instance
  the resumed run finishes with fewer post-resume conflicts than a cold
  restart (see also ``test_snapshot.py``);
* **interrupt + resume** — an interrupted solve writes a final
  checkpoint, and ``clear_interrupt`` + ``resume`` continues to the
  same answer.
"""

import pytest

from repro.checkpoint.snapshot import checkpoint_conflicts
from repro.checkpoint.writer import CheckpointWriter
from repro.generators.pigeonhole import pigeonhole_formula
from repro.parallel import solve_batch
from repro.reliability import FaultPlan, RetryPolicy
from repro.reliability.audit import _instance_pool
from repro.reliability.faults import FaultSpec
from repro.solver.config import config_by_name
from repro.solver.solver import Solver


def _resume_to_completion(formula, checkpoint_path):
    """Fresh solver, warm resume, solve to the end."""
    solver = Solver(formula, config_by_name("berkmin"))
    assert solver.resume(str(checkpoint_path)) is True
    return solver.solve(), solver


@pytest.mark.parametrize(
    "name,formula,expected",
    [(name, formula, expected) for name, formula, expected in _instance_pool()],
)
def test_interrupted_resume_matches_cold_answer(tmp_path, name, formula, expected):
    """Every pinned audit instance: interrupt mid-search, resume, same answer."""
    cold = Solver(formula, config_by_name("berkmin")).solve()
    assert cold.status is expected

    solver = Solver(formula, config_by_name("berkmin"))
    path = tmp_path / f"{name}.ckpt"
    writer = CheckpointWriter(solver, path, every_conflicts=1)
    budget = max(cold.stats.conflicts // 2, 1)
    partial = solver.solve(max_conflicts=budget, on_progress=writer)
    if not partial.is_unknown:
        # Too easy to interrupt (solved before the first progress tick):
        # the cold answer is already the equivalence statement.
        assert partial.status is expected
        return
    writer.finalize(partial)
    resumed, _ = _resume_to_completion(formula, path)
    assert resumed.status is expected


@pytest.mark.fault_injection
def test_sigkill_mid_search_resumes_to_same_answer(tmp_path):
    """Process-level kill: SIGKILL at 300 conflicts, warm-resumed retry."""
    formula = pigeonhole_formula(6)
    cold = Solver(formula, config_by_name("berkmin")).solve()
    assert cold.is_unsat

    checkpoint_dir = tmp_path / "ck"
    plan = FaultPlan(
        (FaultSpec("signal", worker=0, attempt=0, after_conflicts=300),)
    )
    batch = solve_batch(
        [formula],
        jobs=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        verification="full",
        fault_plan=plan,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=100,
    )
    result = batch[0]
    assert result.status is cold.status
    assert result.verified == "proof"
    assert batch.retries == 1
    history = result.attempts
    assert history[0].outcome == "worker crashed (SIGKILL)"
    assert history[0].resumed_from_conflicts is None  # first launch was cold
    assert history[1].outcome == "ok"
    # The relaunch inherited at least one full checkpoint interval of work.
    assert history[1].resumed_from_conflicts >= 100
    assert result.stats.resumes == 1
    # A definite answer reconciles the checkpoint file away.
    assert not (checkpoint_dir / "instance-0000.ckpt").exists()


@pytest.mark.fault_injection
def test_cold_retry_without_checkpoint_dir_for_contrast(tmp_path):
    """Same kill, no checkpointing: the retry starts from zero conflicts."""
    formula = pigeonhole_formula(6)
    plan = FaultPlan(
        (FaultSpec("signal", worker=0, attempt=0, after_conflicts=300),)
    )
    batch = solve_batch(
        [formula],
        jobs=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        verification="full",
        fault_plan=plan,
    )
    result = batch[0]
    assert result.is_unsat
    assert all(record.resumed_from_conflicts is None for record in result.attempts)
    assert result.stats.resumes == 0


def test_proofless_checkpoint_cold_starts_under_full_verification(tmp_path):
    """A snapshot without a proof trace must not be resumed by a launch
    that has to justify its answer — resuming would disable proof
    logging and the parent's gate would reject the (correct) answer as
    unverifiable, burning a retry for nothing."""
    formula = pigeonhole_formula(6)
    checkpoint_dir = tmp_path / "ck"
    # Write a proofless checkpoint (no verification -> no proof logging).
    first = solve_batch(
        [formula],
        jobs=1,
        max_conflicts=300,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=50,
    )
    assert first[0].is_unknown
    assert (checkpoint_dir / "instance-0000.ckpt").exists()

    second = solve_batch(
        [formula],
        jobs=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        verification="full",
        checkpoint_dir=checkpoint_dir,
    )
    result = second[0]
    assert result.is_unsat
    assert result.verified == "proof"
    assert second.retries == 0  # cold start in the same attempt, no churn
    assert result.attempts[-1].resumed_from_conflicts is None


def test_interrupt_writes_final_checkpoint_and_resumes(tmp_path):
    """The interrupt+resume satellite, on the same solver object."""
    formula = pigeonhole_formula(6)
    cold = Solver(formula, config_by_name("berkmin")).solve()

    solver = Solver(formula, config_by_name("berkmin"))
    path = tmp_path / "interrupted.ckpt"
    writer = CheckpointWriter(solver, path, every_conflicts=10_000)

    def interrupt_at_200(stats):
        if stats.conflicts >= 200:
            solver.interrupt()

    writer.chain = interrupt_at_200
    partial = solver.solve(on_progress=writer)
    assert partial.is_unknown and partial.limit_reason == "interrupted"
    writer.finalize(partial)
    assert checkpoint_conflicts(path) == partial.stats.conflicts

    # Path A: the same solver continues in process after clear_interrupt.
    solver.clear_interrupt()
    continued = solver.solve()
    assert continued.status is cold.status

    # Path B: a fresh solver resumes from the final checkpoint on disk.
    resumed, resumed_solver = _resume_to_completion(formula, path)
    assert resumed.status is cold.status
    assert resumed_solver.stats.resumes == 1


def test_trace_conflict_counters_are_monotone_across_the_checkpoint_seam(tmp_path):
    """Warm resume restores the lifetime conflict counter, so the
    concatenated traces of an interrupt/resume chain read as one
    monotone history — the observability layer's checkpoint-seam
    property (see docs/OBSERVABILITY.md)."""
    from repro.observability import RingBufferSink

    formula = pigeonhole_formula(6)
    path = tmp_path / "seam.ckpt"

    first_sink = RingBufferSink(capacity=100_000)
    solver = Solver(formula, config_by_name("berkmin", trace=first_sink))
    writer = CheckpointWriter(solver, path, every_conflicts=100)
    partial = solver.solve(max_conflicts=300, on_progress=writer)
    assert partial.is_unknown
    writer.finalize(partial)

    second_sink = RingBufferSink(capacity=100_000)
    resumed_solver = Solver(formula, config_by_name("berkmin", trace=second_sink))
    assert resumed_solver.resume(str(path)) is True
    final = resumed_solver.solve()
    assert final.is_unsat

    chain = first_sink.events + second_sink.events
    counters = [event["conflicts"] for event in chain if "conflicts" in event]
    assert counters, "the chain recorded no counted events"
    assert counters == sorted(counters), (
        "conflict counters regressed across the checkpoint seam"
    )

    # The seam itself is visible: a write in the first trace, a resume
    # carrying the inherited progress in the second.
    writes = [e for e in first_sink.events if e["type"] == "checkpoint"]
    assert writes and writes[-1]["action"] == "write"
    resumes = [e for e in second_sink.events if e["type"] == "checkpoint"]
    assert [e["action"] for e in resumes] == ["resume"]
    assert resumes[0]["resumed_from"] == partial.stats.conflicts
    # The second trace starts where the first left off, not at zero.
    second_counts = [e["conflicts"] for e in second_sink.events if "conflicts" in e]
    assert min(second_counts) >= partial.stats.conflicts
