"""Capturing and restoring solver state (the warm-resume core)."""

import warnings

import pytest

from repro.checkpoint.snapshot import (
    CheckpointWarning,
    capture_snapshot,
    checkpoint_conflicts,
    formula_fingerprint,
    load_checkpoint,
    restore_snapshot,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.generators.pigeonhole import pigeonhole_formula
from repro.generators.random_ksat import planted_ksat
from repro.solver.config import config_by_name
from repro.solver.solver import Solver


def _partial_solver(formula, conflicts=150, **config_overrides):
    """A solver stopped mid-search after a conflict budget."""
    solver = Solver(formula, config_by_name("berkmin", **config_overrides))
    result = solver.solve(max_conflicts=conflicts)
    assert result.is_unknown
    return solver


def test_fingerprint_is_order_sensitive():
    a = formula_fingerprint([[1, 2], [-1, 3]])
    assert a == formula_fingerprint([[1, 2], [-1, 3]])
    assert a != formula_fingerprint([[-1, 3], [1, 2]])
    assert a != formula_fingerprint([[1, 2]])


def test_snapshot_roundtrips_through_payload():
    solver = _partial_solver(pigeonhole_formula(5), conflicts=100)
    snapshot = capture_snapshot(solver)
    clone = type(snapshot).from_payload(snapshot.to_payload())
    assert clone == snapshot
    assert clone.conflicts == 100


def test_resume_reaches_same_answer_with_fewer_new_conflicts():
    formula = pigeonhole_formula(6)
    cold = Solver(formula, config_by_name("berkmin")).solve()
    assert cold.is_unsat

    budget = cold.stats.conflicts // 2
    snapshot = capture_snapshot(_partial_solver(formula, conflicts=budget))

    resumed_solver = Solver(formula, config_by_name("berkmin"))
    assert restore_snapshot(resumed_solver, snapshot) is True
    assert resumed_solver.stats.conflicts == budget
    assert resumed_solver.stats.resumes == 1
    assert len(resumed_solver.learned) == len(snapshot.learned)

    resumed = resumed_solver.solve()
    assert resumed.status == cold.status
    # The acceptance bar: the inherited learned clauses/activities must
    # make the post-resume search measurably cheaper than a cold restart.
    post_resume_conflicts = resumed.stats.conflicts - budget
    assert post_resume_conflicts < cold.stats.conflicts


def test_resume_restores_heuristic_state():
    solver = _partial_solver(pigeonhole_formula(5), conflicts=120)
    snapshot = capture_snapshot(solver)
    fresh = Solver(pigeonhole_formula(5), config_by_name("berkmin"))
    assert fresh.resume(snapshot) is True
    assert fresh.var_activity == snapshot.var_activity
    assert fresh.lit_activity == snapshot.lit_activity
    assert fresh.vsids == snapshot.vsids
    assert fresh.birth_counter == snapshot.birth_counter
    assert fresh.rng.getstate() == tuple(snapshot.rng_state)
    assert [sorted(clause.literals) for clause in fresh.learned] == [
        sorted(literals) for literals, _, _, _ in snapshot.learned
    ]


def test_resume_is_deterministic():
    formula = pigeonhole_formula(5)
    snapshot = capture_snapshot(_partial_solver(formula, conflicts=100))
    outcomes = []
    for _ in range(2):
        solver = Solver(formula, config_by_name("berkmin"))
        assert solver.resume(snapshot)
        result = solver.solve()
        outcomes.append((result.status, result.stats.conflicts, result.stats.decisions))
    assert outcomes[0] == outcomes[1]


def test_formula_mismatch_degrades_to_cold_start():
    snapshot = capture_snapshot(_partial_solver(pigeonhole_formula(5)))
    other = Solver(pigeonhole_formula(4), config_by_name("berkmin"))
    with pytest.warns(CheckpointWarning):
        assert other.resume(snapshot) is False
    assert other.stats.resumes == 0
    assert other.solve().is_unsat  # the cold start is genuinely clean


def test_sat_instance_resume():
    formula = planted_ksat(30, 126, 3, seed=5)
    cold = Solver(formula, config_by_name("berkmin")).solve()
    assert cold.is_sat
    solver = Solver(formula, config_by_name("berkmin"))
    budget = max(cold.stats.conflicts // 2, 1)
    partial = solver.solve(max_conflicts=budget)
    snapshot = capture_snapshot(solver)
    if partial.is_unknown:
        fresh = Solver(formula, config_by_name("berkmin"))
        assert fresh.resume(snapshot)
        result = fresh.solve()
        assert result.is_sat
        assert formula.evaluate(result.model)


def test_resume_requires_fresh_solver():
    formula = pigeonhole_formula(4)
    snapshot = capture_snapshot(_partial_solver(formula, conflicts=10))
    used = Solver(formula, config_by_name("berkmin"))
    used.solve()
    with pytest.raises(ValueError):
        restore_snapshot(used, snapshot)


def test_proof_trace_survives_resume():
    from repro.proof import check_rup_proof

    formula = pigeonhole_formula(5)
    solver = Solver(formula, config_by_name("berkmin", proof_logging=True))
    assert solver.solve(max_conflicts=80).is_unknown
    snapshot = capture_snapshot(solver)
    assert snapshot.proof  # the partial trace rides in the snapshot

    fresh = Solver(formula, config_by_name("berkmin", proof_logging=True))
    assert fresh.resume(snapshot)
    result = fresh.solve()
    assert result.is_unsat
    check_rup_proof(formula, result.proof)  # end-to-end checkable across the seam


def test_proofless_snapshot_disables_proof_logging_with_warning():
    formula = pigeonhole_formula(4)
    snapshot = capture_snapshot(_partial_solver(formula, conflicts=10))
    assert snapshot.proof is None
    wants_proof = Solver(formula, config_by_name("berkmin", proof_logging=True))
    with pytest.warns(CheckpointWarning):
        assert wants_proof.resume(snapshot) is True
    assert wants_proof.proof is None


def test_save_and_load_checkpoint_files(tmp_path):
    path = tmp_path / "solver.ckpt"
    solver = _partial_solver(pigeonhole_formula(5), conflicts=60)
    saved = save_checkpoint(solver, path)
    loaded = load_checkpoint(path)
    assert loaded == saved
    assert checkpoint_conflicts(path) == 60


def test_try_load_missing_file_is_silent(tmp_path):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert try_load_checkpoint(tmp_path / "absent.ckpt") is None
    assert caught == []


def test_try_load_corrupt_file_warns(tmp_path):
    path = tmp_path / "solver.ckpt"
    save_checkpoint(_partial_solver(pigeonhole_formula(4), conflicts=10), path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.warns(CheckpointWarning):
        assert try_load_checkpoint(path) is None
    assert checkpoint_conflicts(path) is None  # the quiet peek stays quiet


def test_resume_from_path_degrades_on_corruption(tmp_path):
    formula = pigeonhole_formula(4)
    path = tmp_path / "solver.ckpt"
    save_checkpoint(_partial_solver(formula, conflicts=10), path)
    path.write_bytes(b"RSCKgarbage")
    solver = Solver(formula, config_by_name("berkmin"))
    with pytest.warns(CheckpointWarning):
        assert solver.resume(str(path)) is False
    assert solver.solve().is_unsat
