"""The checkpoint envelope: framing, CRC guards, version gate, atomic IO."""

import os

import pytest

from repro.checkpoint.envelope import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    HEADER_SIZE,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    decode_envelope,
    encode_envelope,
    read_checkpoint_file,
    write_checkpoint_file,
)
from repro.checkpoint.io import atomic_write_bytes, atomic_write_json, atomic_write_text

PAYLOAD = {
    "name": "test",
    "numbers": [1, 2, 3],
    "nested": {"rng": (1, (2, 3), None)},
    "flag": True,
}


def test_roundtrip():
    assert decode_envelope(encode_envelope(PAYLOAD)) == PAYLOAD


def test_roundtrip_uncompressed():
    blob = encode_envelope(PAYLOAD, compress=False)
    assert decode_envelope(blob) == PAYLOAD


def test_envelope_starts_with_magic():
    assert encode_envelope(PAYLOAD)[:4] == CHECKPOINT_MAGIC


def test_every_truncation_is_detected():
    blob = encode_envelope(PAYLOAD)
    for length in range(len(blob)):
        with pytest.raises(CheckpointCorruptError):
            decode_envelope(blob[:length])


def test_every_single_bitflip_is_detected():
    blob = encode_envelope(PAYLOAD)
    for position in range(len(blob)):
        for bit in range(8):
            damaged = (
                blob[:position]
                + bytes([blob[position] ^ (1 << bit)])
                + blob[position + 1 :]
            )
            with pytest.raises(CheckpointError):
                decode_envelope(damaged)


def test_stale_version_is_its_own_error():
    blob = encode_envelope(PAYLOAD, version=CHECKPOINT_VERSION + 1)
    with pytest.raises(CheckpointVersionError):
        decode_envelope(blob)
    # ...and a version error is still a CheckpointError for blanket handlers.
    assert issubclass(CheckpointVersionError, CheckpointError)


def test_trailing_garbage_is_ignored():
    # os.replace guarantees we never read a half-new file, but a longer
    # stale tail after a rewrite-in-place must not confuse the reader.
    blob = encode_envelope(PAYLOAD) + b"stale tail bytes"
    assert decode_envelope(blob) == PAYLOAD


def test_non_dict_payload_rejected():
    blob = encode_envelope(["not", "a", "dict"])  # encoder doesn't validate
    with pytest.raises(CheckpointCorruptError):
        decode_envelope(blob)


def test_header_size_constant_matches_layout():
    assert HEADER_SIZE == 24
    assert len(encode_envelope({})) >= HEADER_SIZE


def test_file_roundtrip(tmp_path):
    path = tmp_path / "state.ckpt"
    write_checkpoint_file(path, PAYLOAD)
    assert read_checkpoint_file(path) == PAYLOAD


def test_missing_file_raises_oserror(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_checkpoint_file(tmp_path / "absent.ckpt")


def test_atomic_write_replaces_and_leaves_no_temp_files(tmp_path):
    path = tmp_path / "artifact.bin"
    atomic_write_bytes(path, b"first")
    atomic_write_bytes(path, b"second")
    assert path.read_bytes() == b"second"
    assert os.listdir(tmp_path) == ["artifact.bin"]


def test_atomic_write_text_and_json(tmp_path):
    text_path = tmp_path / "note.txt"
    atomic_write_text(text_path, "hello\n")
    assert text_path.read_text() == "hello\n"
    json_path = tmp_path / "report.json"
    atomic_write_json(json_path, {"ok": True})
    assert json_path.read_text() == '{\n  "ok": true\n}\n'
