"""The on_progress-driven periodic checkpoint writer."""

import pytest

from repro.checkpoint.snapshot import load_checkpoint
from repro.checkpoint.writer import CheckpointWriter
from repro.generators.pigeonhole import pigeonhole_formula
from repro.solver.config import config_by_name
from repro.solver.solver import Solver


def test_periodic_writes_during_solve(tmp_path):
    path = tmp_path / "live.ckpt"
    solver = Solver(pigeonhole_formula(6), config_by_name("berkmin"))
    writer = CheckpointWriter(solver, path, every_conflicts=100)
    result = solver.solve(max_conflicts=400, on_progress=writer)
    assert result.is_unknown
    assert path.exists()
    assert solver.stats.checkpoints_written >= 2
    snapshot = load_checkpoint(path)
    # The counter is bumped before capture, so it rides in the snapshot.
    assert snapshot.stats["checkpoints_written"] == solver.stats.checkpoints_written
    assert 0 < snapshot.conflicts <= 400


def test_finalize_removes_checkpoint_on_definite_answer(tmp_path):
    path = tmp_path / "done.ckpt"
    solver = Solver(pigeonhole_formula(5), config_by_name("berkmin"))
    writer = CheckpointWriter(solver, path, every_conflicts=50)
    result = solver.solve(on_progress=writer)
    assert result.is_unsat
    writer.finalize(result)
    assert not path.exists()


def test_finalize_writes_final_checkpoint_on_unknown(tmp_path):
    path = tmp_path / "partial.ckpt"
    solver = Solver(pigeonhole_formula(6), config_by_name("berkmin"))
    writer = CheckpointWriter(solver, path, every_conflicts=10_000)  # never periodic
    result = solver.solve(max_conflicts=90, on_progress=writer)
    assert result.is_unknown
    assert not path.exists()
    writer.finalize(result)
    assert load_checkpoint(path).conflicts == solver.stats.conflicts


def test_finalize_with_missing_file_is_quiet(tmp_path):
    solver = Solver(pigeonhole_formula(4), config_by_name("berkmin"))
    writer = CheckpointWriter(solver, tmp_path / "never.ckpt", every_conflicts=10_000)
    writer.finalize(solver.solve())  # UNSAT before any write; nothing to remove


def test_chain_is_invoked_every_tick(tmp_path):
    ticks = []
    solver = Solver(pigeonhole_formula(5), config_by_name("berkmin"))
    writer = CheckpointWriter(
        solver,
        tmp_path / "x.ckpt",
        every_conflicts=10_000,
        chain=lambda stats: ticks.append(stats.conflicts),
    )
    solver.solve(max_conflicts=300, on_progress=writer)
    assert ticks  # the wrapped consumer saw every progress tick


def test_writer_rejects_bad_cadence(tmp_path):
    solver = Solver(pigeonhole_formula(3), config_by_name("berkmin"))
    with pytest.raises(ValueError):
        CheckpointWriter(solver, tmp_path / "x.ckpt", every_conflicts=0)
    with pytest.raises(ValueError):
        CheckpointWriter(solver, tmp_path / "x.ckpt", every_seconds=0.0)
