"""Process-boundary regressions: config stripping and formula pickling.

Every field added to :class:`SolverConfig` must cross the worker
boundary verbatim unless :func:`strip_for_worker` names it explicitly —
the stripping is a ``dataclasses.replace`` copy, so new fields (the
arena/inprocessing knobs being the motivating case) ride along without
anyone remembering to update the parallel layer.  These tests enforce
that by *introspection* over the dataclass fields, so they fail the
moment someone reintroduces a hand-maintained field list.

:class:`CnfFormula` crosses the same boundary for every batch/group
instance; its compact ``__getstate__`` tuple must keep covering the
whole instance ``__dict__`` as attributes are added.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.cnf.formula import CnfFormula
from repro.parallel.worker import strip_for_worker
from repro.solver.config import (
    VERIFY_FULL,
    VERIFY_SAT,
    SolverConfig,
    arena_config,
    config_by_name,
)

#: The only fields strip_for_worker may rewrite, and why:
#: proof_logging (forced on under "full" so the parent can RUP-check),
#: trace / metrics_interval (sinks stay in the parent).
_STRIPPABLE = {"proof_logging", "trace", "metrics_interval"}


def test_strip_for_worker_touches_only_the_documented_fields():
    config = arena_config(
        seed=7,
        inprocess_interval=2,
        inprocess_occurrence_limit=14,
        inprocess_max_growth=1,
        arena_gc_fraction=0.1,
        glue_keep_max_lbd=4,
        proof_logging=False,
        metrics_interval=50,
    )
    stripped = strip_for_worker(config, VERIFY_FULL)
    for field in dataclasses.fields(SolverConfig):
        if field.name in _STRIPPABLE:
            continue
        assert getattr(stripped, field.name) == getattr(config, field.name), (
            f"strip_for_worker changed undocumented field {field.name!r}"
        )
    assert stripped.proof_logging is True  # forced by the "full" gate
    assert stripped.trace is None
    assert stripped.metrics_interval == 0


def test_strip_for_worker_is_identity_when_nothing_applies():
    config = arena_config(proof_logging=True)
    assert strip_for_worker(config, VERIFY_SAT) is config


def test_stripped_config_pickles_with_arena_fields_intact():
    config = config_by_name(
        "arena", seed=3, inprocess_interval=8, arena_gc_fraction=0.5
    )
    clone = pickle.loads(pickle.dumps(strip_for_worker(config, VERIFY_FULL)))
    assert clone.propagation == "arena"
    assert clone.inprocess_interval == 8
    assert clone.arena_gc_fraction == 0.5
    assert clone.proof_logging is True


def test_every_config_field_survives_pickle():
    """Field-introspection sweep: no SolverConfig field may be lost or
    mutated by the pickle round trip workers rely on."""
    config = arena_config(seed=11)
    clone = pickle.loads(pickle.dumps(config))
    for field in dataclasses.fields(SolverConfig):
        assert getattr(clone, field.name) == getattr(config, field.name), field.name


def test_cnf_formula_compact_pickle_round_trips():
    formula = CnfFormula(
        [[1, -2, 3], [-1, 2], [2, 3, -4]],
        num_variables=6,
        comment="pickled",
    )
    clone = pickle.loads(pickle.dumps(formula))
    assert clone.num_variables == 6
    assert clone.comment == "pickled"
    assert clone.clauses == formula.clauses
    assert clone.num_clauses == formula.num_clauses


def test_cnf_formula_state_tuple_covers_every_attribute():
    """The compact __getstate__ tuple skips __dict__; this sweep fails
    when someone adds an instance attribute without extending it."""
    formula = CnfFormula([[1, 2]], num_variables=2)
    restored = pickle.loads(pickle.dumps(formula))
    missing = set(formula.__dict__) - set(restored.__dict__)
    assert not missing, (
        f"CnfFormula.__getstate__ drops attributes {sorted(missing)}; "
        "extend the state tuple in cnf/formula.py"
    )
    for name, value in formula.__dict__.items():
        assert restored.__dict__[name] == value, name


def test_strippable_set_matches_strip_for_worker_source():
    """If strip_for_worker grows a new override, this test must be
    updated consciously — the _STRIPPABLE contract is part of the
    worker-boundary API."""
    import inspect

    source = inspect.getsource(strip_for_worker)
    mentioned = {name for name in _STRIPPABLE if name in source}
    assert mentioned == _STRIPPABLE
    overrides = {
        name
        for name in (field.name for field in dataclasses.fields(SolverConfig))
        if f'overrides["{name}"]' in source
    }
    assert overrides == _STRIPPABLE, (
        f"strip_for_worker overrides {sorted(overrides)} but the documented "
        f"contract is {sorted(_STRIPPABLE)}"
    )


def test_unknown_override_field_is_rejected():
    config = arena_config(metrics_interval=10)
    with pytest.raises(TypeError):
        config.with_overrides(not_a_field=1)
