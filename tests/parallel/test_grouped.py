"""solve_grouped: supervised incremental sessions over worker processes."""

import pytest

from repro.cnf.formula import CnfFormula
from repro.parallel import GroupedResult, solve_grouped
from repro.reliability import FaultPlan
from repro.reliability.retry import NO_RETRY, RetryPolicy
from repro.solver.result import SolveStatus
from repro.solver.solver import solve_formula

# Two related-query streams: a growing equivalence chain queried under
# assumptions, and a depth-style stream that flips to UNSAT at the end.
CHAIN_GROUP = [
    ([[1, 2], [-1, -2]], [1]),              # x1 != x2, assume x1  -> SAT
    ([[2, 3], [-2, -3]], [1, -3]),          # chain to x3          -> UNSAT
    ([], [1, 3]),                           # same formula, new q  -> SAT
]
SHRINK_GROUP = [
    ([[1, 2]], []),                         # SAT
    ([[-1]], []),                           # forces 2            -> SAT
    ([[-2]], []),                           # refuted             -> UNSAT
]


def _expected_statuses(group):
    accumulated = []
    expected = []
    for clauses, assumptions in group:
        accumulated.extend(clauses)
        reference = solve_formula(
            CnfFormula([list(c) for c in accumulated]), assumptions=assumptions
        )
        expected.append(reference.status)
    return expected


def test_grouped_matches_one_shot_per_step():
    grouped = solve_grouped([CHAIN_GROUP, SHRINK_GROUP], jobs=2, verification="sat")
    assert isinstance(grouped, GroupedResult)
    assert grouped.retries == 0
    for group, outcome in zip((CHAIN_GROUP, SHRINK_GROUP), grouped.groups):
        assert not outcome.degraded
        assert outcome.attempts == 1
        assert [r.status for r in outcome.results] == _expected_statuses(group)
    assert len(grouped.flat_results()) == len(CHAIN_GROUP) + len(SHRINK_GROUP)


def test_grouped_sat_answers_are_verified_in_parent():
    grouped = solve_grouped([SHRINK_GROUP], verification="sat")
    results = grouped.groups[0].results
    assert [r.status for r in results] == [
        SolveStatus.SAT, SolveStatus.SAT, SolveStatus.UNSAT
    ]
    for result in results:
        if result.status is SolveStatus.SAT:
            assert result.verified == "model"


def test_grouped_unsat_core_survives_the_worker_hop():
    grouped = solve_grouped([CHAIN_GROUP], verification="sat")
    step = grouped.groups[0].results[1]
    assert step.status is SolveStatus.UNSAT
    assert step.core is not None
    assert set(step.core) <= {1, -3}
    assert step.num_assumptions == 2


@pytest.mark.fault_injection
def test_grouped_corrupt_fault_is_caught_and_retried():
    plan = FaultPlan.single("corrupt", worker=0)
    grouped = solve_grouped(
        [CHAIN_GROUP],
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
        verification="sat",
        fault_plan=plan,
    )
    assert grouped.retries == 1
    outcome = grouped.groups[0]
    assert not outcome.degraded
    assert [r.status for r in outcome.results] == _expected_statuses(CHAIN_GROUP)


@pytest.mark.fault_injection
def test_grouped_crash_without_retry_degrades_cleanly():
    plan = FaultPlan.single("crash", worker=0)
    grouped = solve_grouped(
        [CHAIN_GROUP, SHRINK_GROUP],
        jobs=2,
        retry=NO_RETRY,
        verification="sat",
        fault_plan=plan,
    )
    victim, survivor = grouped.groups
    assert victim.degraded
    assert victim.failure is not None
    assert all(r.status is SolveStatus.UNKNOWN for r in victim.results)
    assert len(victim.results) == len(CHAIN_GROUP)
    assert not survivor.degraded
    assert [r.status for r in survivor.results] == _expected_statuses(SHRINK_GROUP)


@pytest.mark.fault_injection
def test_grouped_stalled_worker_is_caught_by_the_watchdog():
    plan = FaultPlan.single("stall", worker=0, seconds=30.0)
    grouped = solve_grouped(
        [CHAIN_GROUP],
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
        verification="sat",
        stall_seconds=1.0,
        fault_plan=plan,
    )
    assert grouped.retries == 1
    outcome = grouped.groups[0]
    assert not outcome.degraded
    assert [r.status for r in outcome.results] == _expected_statuses(CHAIN_GROUP)


def test_grouped_watchdog_does_not_false_positive_on_healthy_groups():
    grouped = solve_grouped(
        [CHAIN_GROUP, SHRINK_GROUP], jobs=2, verification="sat", stall_seconds=5.0
    )
    assert grouped.retries == 0
    assert not any(outcome.degraded for outcome in grouped.groups)
