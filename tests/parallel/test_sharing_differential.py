"""Differential gate: sharing-on vs sharing-off portfolio agreement.

Clause sharing must never change an answer — only how fast it arrives.
Both arms run the same 50-formula mixed pool used by the arena
differential gate, under the full trusted-results verification the
portfolio applies to winners: SAT models are checked against the
original formula and UNSAT proofs are RUP-checked, so an unsound
import in either arm fails here even if both arms happen to agree.

The pool is deliberately small per instance; restart intervals are
cranked low so the sharing arm actually reaches its level-0 import
points, and the test asserts the bus exported *something* across the
pool — an agreement gate over a bus that never delivered would be
vacuous.  Admitted imports are asserted separately on a longer planted
instance: on the quick pool most shared clauses are still parked
awaiting their RUP probe when the winner finishes, which is the
validation gate doing its job, not a delivery failure.
"""

from __future__ import annotations

import random

import pytest

from repro.cnf.formula import CnfFormula
from repro.generators import (
    pigeonhole_formula,
    planted_ksat,
    random_ksat,
    random_xor_system,
    xor_system_formula,
)
from repro.parallel import PortfolioSolver
from repro.solver.config import config_by_name
from repro.solver.result import SolveStatus


def _random_soup(rng: random.Random) -> CnfFormula:
    n = rng.randint(4, 12)
    clauses = []
    for _ in range(rng.randint(5, 45)):
        arity = min(rng.randint(1, 5), n)
        variables = rng.sample(range(1, n + 1), arity)
        clauses.append([v * rng.choice((1, -1)) for v in variables])
    return CnfFormula(clauses, num_variables=n)


def _parity(nv: int, ne: int, seed: int, planted: bool) -> CnfFormula:
    return xor_system_formula(random_xor_system(nv, ne, 3, seed=seed, planted=planted))


def _pool() -> list[tuple[str, CnfFormula]]:
    rng = random.Random(20260808)
    formulas = [(f"soup{i}", _random_soup(rng)) for i in range(30)]
    formulas += [(f"hole{n}", pigeonhole_formula(n)) for n in (3, 4, 5)]
    formulas += [(f"parity_sat{s}", _parity(10, 10, s, True)) for s in (1, 2, 3, 4)]
    formulas += [(f"parity_unsat{s}", _parity(8, 16, s, False)) for s in (1, 2, 3, 4)]
    formulas += [(f"ksat{s}", random_ksat(25, 106, 3, seed=s)) for s in range(5)]
    formulas += [(f"planted{s}", planted_ksat(30, 120, 3, seed=s)) for s in range(4)]
    return formulas


def _configs():
    return [
        config_by_name("berkmin", seed=1, restart_interval=20),
        config_by_name("chaff", seed=2, restart_interval=20),
    ]


@pytest.mark.slow
def test_sharing_on_and_off_agree_across_the_pool():
    pool = _pool()
    assert len(pool) == 50
    total_imported = 0
    total_exported = 0
    for name, formula in pool:
        statuses = {}
        for share in (False, True):
            portfolio = PortfolioSolver(
                _configs(), jobs=2, verification="full", share=share
            )
            result = portfolio.solve(formula, max_seconds=60.0)
            assert result.status is not SolveStatus.UNKNOWN, (name, share)
            # The trusted-results gate: a SAT winner re-checks as a
            # model, an UNSAT winner's proof RUP-checks — imported
            # clauses included, because imports are DRUP-logged.
            assert result.verified in ("model", "proof"), (name, share)
            statuses[share] = result.status
            if share:
                total_imported += result.stats.shared_imported
                total_exported += result.stats.shared_exported
        assert statuses[False] is statuses[True], (
            f"{name}: sharing changed the answer — off "
            f"{statuses[False].name} vs on {statuses[True].name}"
        )
    # The gate must not be vacuous: across 50 mixed formulas the bus
    # has to have moved actual clauses out of the lanes.  Most of these
    # solves finish before any import clears its RUP parking probe, so
    # admitted imports are asserted on the longer instance below.
    assert total_exported > 0
    assert total_imported >= 0


@pytest.mark.slow
def test_sharing_admits_imports_on_a_longer_instance():
    """A run long enough for parked imports to clear their RUP probe.

    The hedged arena+reference fleet on this planted draw reliably
    admits dozens of imports (the portfolio bench's quick instance),
    and the winner still verifies under the full trusted-results gate.
    """
    configs = [
        config_by_name("berkmin", seed=1, propagation="arena"),
        config_by_name("berkmin", seed=3, propagation="general"),
    ]
    portfolio = PortfolioSolver(configs, jobs=2, verification="full", share=True)
    result = portfolio.solve(planted_ksat(200, 900, 3, seed=1), max_seconds=120.0)
    assert result.status is SolveStatus.SAT
    assert result.verified == "model"
    assert result.stats.shared_exported > 0
    assert result.stats.shared_imported > 0
