"""Solver.interrupt() and the on_progress hook — the parallel primitives."""

import threading
import time

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.solver.solver import Solver
from repro.solver.stats import SolverStats


def test_on_progress_receives_live_stats():
    seen = []
    solver = Solver(pigeonhole_formula(6))
    result = solver.solve(on_progress=seen.append)
    assert result.is_unsat
    assert seen, "hole6 generates well over 128 conflicts"
    assert all(isinstance(stats, SolverStats) for stats in seen)
    assert seen[0] is solver.stats  # the live object, not a copy


def test_interrupt_from_progress_callback():
    solver = Solver(pigeonhole_formula(7))

    def hook(stats):
        solver.interrupt()

    result = solver.solve(on_progress=hook)
    assert result.is_unknown
    assert result.limit_reason == "interrupted"
    # The flag was cleared when honoured: the next call runs to completion.
    assert solver.solve(max_conflicts=200_000).is_unsat


def test_interrupt_from_another_thread():
    solver = Solver(pigeonhole_formula(8))
    timer = threading.Timer(0.05, solver.interrupt)
    timer.start()
    started = time.perf_counter()
    # Budget is a safety net only; the interrupt should fire long first.
    result = solver.solve(max_conflicts=2_000_000)
    timer.cancel()
    assert result.is_unknown
    assert result.limit_reason == "interrupted"
    assert time.perf_counter() - started < 60


def test_pending_interrupt_stops_next_solve_immediately():
    solver = Solver(pigeonhole_formula(7))
    solver.interrupt()
    result = solver.solve()
    assert result.is_unknown and result.limit_reason == "interrupted"
    assert solver.stats.conflicts == 0


def test_clear_interrupt_discards_request():
    solver = Solver(pigeonhole_formula(5))
    solver.interrupt()
    solver.clear_interrupt()
    assert solver.solve().is_unsat


def test_progress_callback_exception_propagates():
    solver = Solver(pigeonhole_formula(6))

    def hook(stats):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        solver.solve(on_progress=hook)
