"""solve_batch: ordering, aggregation, and per-instance degradation."""

import pytest

import repro
from repro.generators import pigeonhole_formula, planted_ksat, queens_formula
from repro.parallel import BatchResult, solve_batch
from repro.parallel.worker import solve_in_worker
from repro.reliability import FaultPlan
from repro.solver.result import SolveStatus


def _mixed_formulas():
    return [
        pigeonhole_formula(4),          # UNSAT
        planted_ksat(18, 70, 3, seed=2),  # SAT
        queens_formula(6),              # SAT
        pigeonhole_formula(5),          # UNSAT
    ]


def test_batch_matches_sequential_statuses_in_order():
    formulas = _mixed_formulas()
    sequential = [repro.solve(formula).status for formula in formulas]
    batch = solve_batch(formulas, jobs=2)
    assert batch.statuses() == sequential
    assert sequential == [
        SolveStatus.UNSAT, SolveStatus.SAT, SolveStatus.SAT, SolveStatus.UNSAT,
    ]
    assert batch.num_sat == 2 and batch.num_unsat == 2 and batch.num_unknown == 0
    assert batch.all_definite
    for formula, result in zip(formulas, batch):
        if result.is_sat:
            assert formula.evaluate(result.model)


def test_batch_aggregates_stats():
    batch = solve_batch(_mixed_formulas(), jobs=2)
    assert batch.stats.conflicts == sum(r.stats.conflicts for r in batch.results)
    assert batch.stats.decisions == sum(r.stats.decisions for r in batch.results)
    assert batch.stats.initial_clauses == sum(
        r.stats.initial_clauses for r in batch.results
    )
    assert batch.wall_seconds > 0


def test_batch_result_container_protocol():
    batch = solve_batch([pigeonhole_formula(4)], jobs=1)
    assert len(batch) == 1
    assert batch[0].is_unsat
    assert [r.status for r in batch] == [SolveStatus.UNSAT]
    assert "1 UNSAT" in repr(batch)


def test_empty_batch():
    batch = solve_batch([])
    assert isinstance(batch, BatchResult)
    assert len(batch) == 0
    assert batch.all_definite


def test_batch_accepts_clause_lists_and_config_name():
    batch = solve_batch([[[1, 2], [-1]], [[1], [-1]]], config="chaff", jobs=2)
    assert batch.statuses() == [SolveStatus.SAT, SolveStatus.UNSAT]
    assert all(result.config_name == "chaff" for result in batch)


def test_per_instance_conflict_budget_degrades_to_unknown():
    formulas = [pigeonhole_formula(4), pigeonhole_formula(9), pigeonhole_formula(4)]
    batch = solve_batch(formulas, jobs=2, max_conflicts=300)
    assert batch.statuses() == [
        SolveStatus.UNSAT, SolveStatus.UNKNOWN, SolveStatus.UNSAT,
    ]
    assert batch[1].limit_reason == "conflict budget"
    assert not batch.all_definite


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        solve_batch([pigeonhole_formula(3)], jobs=0)


@pytest.mark.fault_injection
def test_hung_worker_hits_hard_timeout():
    formulas = [pigeonhole_formula(4), pigeonhole_formula(4), pigeonhole_formula(4)]
    batch = solve_batch(
        formulas,
        jobs=3,
        timeout=1.0,
        fault_plan=FaultPlan.single("hang", worker=1, seconds=600),
    )
    assert batch.statuses() == [
        SolveStatus.UNSAT, SolveStatus.UNKNOWN, SolveStatus.UNSAT,
    ]
    assert batch[1].limit_reason == "time budget"


@pytest.mark.fault_injection
def test_crashed_worker_degrades_without_losing_batch():
    formulas = [pigeonhole_formula(4), pigeonhole_formula(5), pigeonhole_formula(4)]
    batch = solve_batch(
        formulas, jobs=2, fault_plan=FaultPlan.single("crash", worker=1)
    )
    assert batch.statuses() == [
        SolveStatus.UNSAT, SolveStatus.UNKNOWN, SolveStatus.UNSAT,
    ]
    assert batch[1].limit_reason.startswith("worker crashed")
    # The degraded result reports the real elapsed time, not 0.0.
    assert batch[1].wall_seconds > 0.0


def test_worker_converts_exceptions_to_none_payload():
    """A worker whose solve raises posts (index, None) instead of dying."""
    import queue

    results = queue.Queue()
    solve_in_worker(7, object(), None, {}, None, results)  # not a formula
    index, payload = results.get_nowait()
    assert index == 7 and payload is None


def test_stop_event_drains_the_batch_with_honest_unknowns():
    import threading

    from repro.parallel.batch import DRAIN_REASON
    from repro.generators import pigeonhole_formula

    stop = threading.Event()
    stop.set()  # request the drain before any instance can finish
    batch = solve_batch(
        [pigeonhole_formula(9), pigeonhole_formula(9, pigeons=11)],
        jobs=2,
        stop_event=stop,
    )
    assert batch.drained
    assert all(result.status is SolveStatus.UNKNOWN for result in batch)
    assert all(
        result.limit_reason in (DRAIN_REASON, "interrupted") for result in batch
    )


def test_unset_stop_event_changes_nothing():
    import threading

    batch = solve_batch([[[1]], [[2], [-2]]], jobs=2, stop_event=threading.Event())
    assert not batch.drained
    assert [result.status for result in batch] == [SolveStatus.SAT, SolveStatus.UNSAT]
