"""PortfolioSolver: race semantics, agreement with ground truth, degradation."""

import pytest

import repro
from repro.generators import (
    odd_cycle_formula,
    pigeonhole_formula,
    planted_ksat,
    queens_formula,
    random_xor_system,
    xor_system_formula,
)
from repro.parallel import PORTFOLIO_PRESETS, PortfolioSolver, default_portfolio
from repro.reliability import FaultPlan, FaultSpec
from repro.solver.config import SolverConfig, chaff_config
from repro.solver.result import SolveStatus

#: Known-status instances across the generator families (small, fast).
GROUND_TRUTH = [
    ("hole5", lambda: pigeonhole_formula(5), SolveStatus.UNSAT),
    ("queens6", lambda: queens_formula(6), SolveStatus.SAT),
    ("ksat20", lambda: planted_ksat(20, 80, 3, seed=1), SolveStatus.SAT),
    (
        "xor_sat",
        lambda: xor_system_formula(random_xor_system(14, 12, 3, seed=2, planted=True)),
        SolveStatus.SAT,
    ),
    (
        "xor_unsat",
        lambda: xor_system_formula(random_xor_system(10, 20, 3, seed=3, planted=False)),
        SolveStatus.UNSAT,
    ),
    ("odd_cycle7", lambda: odd_cycle_formula(7), SolveStatus.UNSAT),
]


def test_default_portfolio_is_diverse():
    configs = default_portfolio(4)
    assert len(configs) == 4
    assert len({config.name for config in configs}) == 4
    assert len({config.seed for config in configs}) == 4
    # Larger than the rotation: presets repeat but seeds never do.
    many = default_portfolio(len(PORTFOLIO_PRESETS) + 2)
    assert len({config.seed for config in many}) == len(many)


def test_default_portfolio_rejects_empty():
    with pytest.raises(ValueError):
        default_portfolio(0)
    with pytest.raises(ValueError):
        PortfolioSolver([], jobs=2)
    with pytest.raises(ValueError):
        PortfolioSolver(jobs=0)


def test_accepts_config_names_and_instances():
    portfolio = PortfolioSolver(["berkmin", chaff_config(seed=5)])
    assert [config.name for config in portfolio.configs] == ["berkmin", "chaff"]
    assert all(isinstance(config, SolverConfig) for config in portfolio.configs)
    assert portfolio.jobs == 2


@pytest.mark.parametrize("name,build,expected", GROUND_TRUTH, ids=[g[0] for g in GROUND_TRUTH])
def test_portfolio_agrees_with_ground_truth(name, build, expected):
    formula = build()
    sequential = repro.solve(formula)
    assert sequential.status is expected
    result = PortfolioSolver(jobs=3).solve(formula)
    assert result.status is expected
    assert result.config_name in {c.name for c in default_portfolio(3)}
    if result.is_sat:
        assert formula.evaluate(result.model)


def test_more_configs_than_jobs_still_finishes():
    portfolio = PortfolioSolver(default_portfolio(5), jobs=2)
    result = portfolio.solve(pigeonhole_formula(5))
    assert result.is_unsat


def test_all_members_exhaust_budget_yields_unknown():
    result = PortfolioSolver(jobs=2).solve(pigeonhole_formula(8), max_conflicts=10)
    assert result.is_unknown
    assert "conflict budget" in result.limit_reason
    assert result.stats.conflicts > 0  # merged stats from the members


def test_solve_accepts_clause_lists_and_assumptions():
    result = PortfolioSolver(jobs=2).solve([[1, 2], [-1, 2]], assumptions=[-2])
    assert result.is_unsat
    assert result.under_assumptions


@pytest.mark.fault_injection
def test_one_crashed_worker_does_not_lose_the_race():
    portfolio = PortfolioSolver(
        jobs=2, fault_plan=FaultPlan.single("crash", worker=0)
    )
    result = portfolio.solve(pigeonhole_formula(5))
    assert result.is_unsat


@pytest.mark.fault_injection
def test_every_worker_crashing_yields_unknown():
    plan = FaultPlan(
        specs=(FaultSpec(mode="crash", worker=0), FaultSpec(mode="crash", worker=1))
    )
    result = PortfolioSolver(jobs=2, fault_plan=plan).solve(pigeonhole_formula(4))
    assert result.is_unknown
    assert result.limit_reason.startswith("worker crashed")
