"""SolveResult enrichment and cross-process picklability."""

import pickle

import repro
from repro.cnf.formula import CnfFormula
from repro.generators.pigeonhole import pigeonhole_formula
from repro.solver.config import berkmin_config, config_by_name
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.stats import SolverStats, aggregate_stats


def test_positional_construction_stays_backward_compatible():
    # The pre-existing positional order: status, model, stats, proof,
    # limit_reason, under_assumptions, core.  New fields trail behind.
    stats = SolverStats(decisions=3)
    result = SolveResult(SolveStatus.SAT, {1: True}, stats, None, None, False, None)
    assert result.is_sat
    assert result.config_name is None
    assert result.wall_seconds == 0.0


def test_solver_populates_config_name_and_wall_seconds():
    result = repro.solve(pigeonhole_formula(4), config=config_by_name("chaff"))
    assert result.config_name == "chaff"
    assert result.wall_seconds > 0.0
    assert result.wall_seconds < 60.0


def test_repr_is_readable():
    result = repro.solve(pigeonhole_formula(4))
    text = repr(result)
    assert "UNSAT" in text
    assert "config='berkmin'" in text
    assert "wall=" in text
    unknown = repro.solve(pigeonhole_formula(7), max_conflicts=2)
    assert "limit_reason='conflict budget'" in repr(unknown)


def test_degraded_unknown_surfaces_its_failure_story():
    from repro.solver.result import AttemptRecord

    degraded = SolveResult(
        SolveStatus.UNKNOWN,
        limit_reason="worker crashed (SIGKILL)",
        attempts=[
            AttemptRecord(0, "berkmin", 0, "worker crashed (SIGKILL)"),
            AttemptRecord(1, "berkmin", 1, "worker crashed (SIGKILL)"),
            AttemptRecord(2, "berkmin", 2, "stalled (no heartbeat)"),
        ],
    )
    assert degraded.degraded is True
    assert degraded.degradation == "worker crashed (SIGKILL) after 3 attempts"
    text = repr(degraded)
    assert "degraded='worker crashed (SIGKILL) after 3 attempts'" in text
    assert "limit_reason" not in text  # the degradation line replaces it

    # A budget UNKNOWN (no attempts, or a final "ok") is not degraded.
    budget = SolveResult(SolveStatus.UNKNOWN, limit_reason="conflict budget")
    assert budget.degraded is False and budget.degradation is None
    recovered = SolveResult(
        SolveStatus.UNSAT,
        attempts=[
            AttemptRecord(0, "berkmin", 0, "worker crashed (SIGKILL)"),
            AttemptRecord(1, "berkmin", 1, "ok"),
        ],
    )
    assert recovered.degraded is False
    assert "attempts=2" in repr(recovered)


def test_solve_result_pickles_across_processes():
    result = repro.solve(pigeonhole_formula(4))
    clone = pickle.loads(pickle.dumps(result))
    assert clone.status is SolveStatus.UNSAT
    assert clone.config_name == result.config_name
    assert clone.stats.conflicts == result.stats.conflicts

    sat = repro.solve([[1, 2], [-1]])
    clone = pickle.loads(pickle.dumps(sat))
    assert clone.model == sat.model


def test_solver_config_pickles():
    config = berkmin_config(seed=9, restart_interval=123)
    clone = pickle.loads(pickle.dumps(config))
    assert clone == config


def test_cnf_formula_pickle_roundtrip():
    formula = CnfFormula([[1, -2], [2, 3]], comment="pickled")
    clone = pickle.loads(pickle.dumps(formula))
    assert clone.clauses == formula.clauses
    assert clone.num_variables == formula.num_variables
    assert clone.comment == "pickled"


def test_aggregate_stats_merges_counters_and_peaks():
    a = SolverStats(conflicts=5, decisions=8, peak_clauses=40, max_decision_level=3)
    a.record_skin_distance(0)
    b = SolverStats(conflicts=2, decisions=1, peak_clauses=10, max_decision_level=9)
    b.record_skin_distance(0)
    b.record_skin_distance(4)
    total = aggregate_stats([a, b])
    assert total.conflicts == 7
    assert total.decisions == 9
    assert total.peak_clauses == 40  # peak, not sum
    assert total.max_decision_level == 9
    assert total.skin_effect == {0: 2, 4: 1}
    # Inputs are untouched.
    assert a.conflicts == 5 and b.skin_effect == {0: 1, 4: 1}
