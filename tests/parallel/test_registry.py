"""The public config registry: available_configs and field validation."""

import pytest

import repro
from repro.solver.config import (
    CONFIG_FACTORIES,
    SolverConfig,
    available_configs,
    berkmin_config,
    config_by_name,
)


def test_available_configs_covers_registry():
    catalog = available_configs()
    assert set(catalog) == set(CONFIG_FACTORIES)
    assert list(catalog) == sorted(catalog)


def test_available_configs_descriptions_are_docstring_first_lines():
    catalog = available_configs()
    for name, summary in catalog.items():
        assert summary, f"{name} has no description"
        assert "\n" not in summary
    assert "BerkMin" in catalog["berkmin"]
    assert "Chaff" in catalog["chaff"]


def test_available_configs_is_top_level_api():
    assert repro.available_configs() == available_configs()
    assert "available_configs" in repro.__all__


def test_unknown_field_raises_typeerror_with_suggestion():
    with pytest.raises(TypeError, match="restart_interval"):
        config_by_name("berkmin", restart_intervall=9)
    with pytest.raises(TypeError, match="did you mean 'seed'"):
        berkmin_config(sede=3)
    with pytest.raises(TypeError, match="top_clause_window"):
        config_by_name("berkmin", window=3)


def test_unknown_field_without_near_match_lists_fields():
    with pytest.raises(TypeError, match="valid fields"):
        berkmin_config(zzzzqqqq=1)


def test_with_overrides_validates_directly():
    config = SolverConfig()
    with pytest.raises(TypeError, match="restart_interval"):
        config.with_overrides(restart_intervals=10)
    assert config.with_overrides(restart_interval=10).restart_interval == 10


def test_every_factory_still_accepts_valid_overrides():
    for name in CONFIG_FACTORIES:
        config = config_by_name(name, seed=7, restart_interval=11)
        assert config.seed == 7
        assert config.restart_interval == 11


def test_unknown_name_still_raises_valueerror():
    with pytest.raises(ValueError, match="unknown configuration"):
        config_by_name("berkmax")
