"""Validated clause sharing: frame codec, bus, import gate, quarantine.

The import-validation tests drive `Solver._import_shared` directly with
a fake share client, across all three propagation engines — a rejected
frame must leave the solver bit-for-bit untouched and the rejection
must be attributed to the emitting lane with the right severity.
"""

import queue
import random

import pytest

from repro.generators import pigeonhole_formula, planted_ksat, queens_formula
from repro.parallel import PortfolioSolver
from repro.parallel.sharing import (
    DEFAULT_QUARANTINE_THRESHOLD,
    SEVERITY_BENIGN,
    SEVERITY_HARD,
    AdaptiveLaneManager,
    ClauseBus,
    ShareFrameError,
    clause_key,
    decode_share_frame,
    encode_share_frame,
    is_tautology,
    mutate_config,
)
from repro.reliability import FaultPlan
from repro.reliability.faults import FAULT_CORRUPT_SHARE
from repro.solver.config import berkmin_config, config_by_name
from repro.solver.result import SolveStatus
from repro.solver.solver import TRUE, Solver

ENGINES = ("split", "general", "arena")


# ----------------------------------------------------------------- codec
def test_frame_roundtrip():
    literals = (3, -7, 12)
    frame = encode_share_frame(1, 42, 2, literals)
    assert decode_share_frame(frame) == (1, 42, 2, literals)


def test_frame_roundtrip_unit():
    frame = encode_share_frame(0, 0, 1, (-5,))
    assert decode_share_frame(frame) == (0, 0, 1, (-5,))


@pytest.mark.parametrize(
    "mangle,reason",
    [
        (lambda f: f[:-2], "bad-frame"),  # literal-misaligned
        (lambda f: f[:8], "bad-frame"),  # truncated header
        (lambda f: b"", "bad-frame"),
        (lambda f: bytes([f[0] ^ 0xFF]) + f[1:], "bad-crc"),
        (lambda f: f[:-4] + bytes(4), "bad-crc"),  # literal zeroed, CRC stale
    ],
)
def test_frame_rejects_damage(mangle, reason):
    frame = encode_share_frame(0, 0, 2, (1, -2, 3))
    with pytest.raises(ShareFrameError) as excinfo:
        decode_share_frame(mangle(frame))
    assert excinfo.value.reason == reason


def test_frame_rejects_zero_literal():
    frame = encode_share_frame(0, 0, 2, (1, 0, 3))
    with pytest.raises(ShareFrameError) as excinfo:
        decode_share_frame(frame)
    assert excinfo.value.reason == "zero-literal"


def test_clause_key_and_tautology():
    assert clause_key([3, -1, 2]) == clause_key([2, 3, -1])
    assert is_tautology([1, -1, 5])
    assert is_tautology([2, 2])
    assert not is_tautology([1, 2, -3])


# ------------------------------------------------------------------- bus
def _bus(num_lanes=2, **kw):
    formula = planted_ksat(10, 30, 3, seed=1)
    kw.setdefault("rng", None)  # no spot checks unless a test asks
    bus = ClauseBus(formula, num_lanes, **kw)
    queues = [queue.Queue() for _ in range(num_lanes)]
    for lane, q in enumerate(queues):
        bus.attach(lane, attempt=0, import_queue=q)
    return bus, queues


def test_bus_fans_out_and_dedups():
    bus, queues = _bus()
    frame = encode_share_frame(0, 0, 2, (1, -2))
    bus.offer(0, 0, frame)
    dup = encode_share_frame(1, 0, 2, (-2, 1))  # same clause, other lane
    bus.offer(1, 0, dup)
    assert bus.pump() == 1  # duplicate suppressed, one frame forwarded
    assert queues[1].get_nowait() == (0, frame)
    assert queues[0].empty()
    assert bus.lanes[0].exported == 1
    assert bus.lanes[1].hard_rejections == 0  # duplicate is not evidence


@pytest.mark.parametrize(
    "frame,reason",
    [
        (b"\x00" * 10, "bad-frame"),
        (encode_share_frame(0, 0, 2, (1, 2))[:-1] + b"\xFF", "bad-crc"),
        (encode_share_frame(1, 0, 2, (1, 2)), "origin-mismatch"),
        (encode_share_frame(0, 5, 2, (1, 2)), "bad-sequence"),
        (encode_share_frame(0, 0, 9, (1, 2)), "lbd-filter"),
        (encode_share_frame(0, 0, 2, (1, 99)), "out-of-range"),
        (encode_share_frame(0, 0, 2, (1, -1)), "tautology"),
    ],
)
def test_bus_hard_rejections_attributed(frame, reason):
    events = []

    class Sink:
        def emit(self, event):
            events.append(event)

    bus, queues = _bus(trace=Sink())
    bus.offer(0, 0, frame)
    assert bus.lanes[0].hard_rejections == 1
    assert bus.lanes[1].hard_rejections == 0
    assert queues[1].empty()
    rejects = [e for e in events if e["type"] == "share_reject"]
    assert rejects and rejects[0]["lane"] == 0
    assert rejects[0]["reason"] == reason
    assert rejects[0]["severity"] == SEVERITY_HARD


def test_bus_stale_attempt_ignored():
    bus, _ = _bus()
    bus.offer(0, attempt=7, frame=b"garbage")  # stale post, no blame
    assert bus.lanes[0].hard_rejections == 0


def test_bus_quarantine_threshold_and_purge():
    bus, queues = _bus()
    # Stage an honest clause from lane 0 so purge has something to drop.
    bus.offer(0, 0, encode_share_frame(0, 0, 2, (1, 2)))
    for seq in range(DEFAULT_QUARANTINE_THRESHOLD):
        bus.offer(0, 0, encode_share_frame(0, seq + 1, 2, (1, 99)))
    assert bus.poisoned_lanes() == [0]
    state = bus.mark_quarantined(0)
    assert state.quarantined
    assert bus.pump() == 0  # staged clause purged fleet-wide
    assert queues[1].empty()
    # A quarantined lane is muted: further frames gather no new evidence.
    before = bus.lanes[0].hard_rejections
    bus.offer(0, 0, b"junk")
    assert bus.lanes[0].hard_rejections == before


def test_benign_notices_never_quarantine():
    bus, _ = _bus()
    for _ in range(10 * DEFAULT_QUARANTINE_THRESHOLD):
        bus.notice(
            1, 0, {"origin": 0, "reason": "rup-unproven", "severity": SEVERITY_BENIGN}
        )
    assert bus.lanes[0].benign_rejections > 0
    assert bus.poisoned_lanes() == []


def test_bus_spot_check_convicts_refuted_clause():
    # queens(4) does not imply the unit clause (1); a spot check must
    # refute it and convict the sharer — hard evidence.
    formula = queens_formula(4)
    bus = ClauseBus(formula, 2, rng=random.Random(3), verify_fraction=1.0)
    q0, q1 = queue.Queue(), queue.Queue()
    bus.attach(0, 0, q0)
    bus.attach(1, 0, q1)
    bus.offer(0, 0, encode_share_frame(0, 0, 1, (1,)))
    while bus._pending_checks:
        bus.pump()
    assert bus.spot_refuted == 1
    assert bus.lanes[0].hard_rejections == 1


# ----------------------------------------------------- worker import gate
class FakeShare:
    """Stands in for ShareClient: canned frames, recorded rejections."""

    def __init__(self, frames, export_max_lbd=3):
        self.frames = list(frames)
        self.rejects = []
        self.export_max_lbd = export_max_lbd

    def drain(self):
        out, self.frames = self.frames, []
        return out

    def reject(self, origin, reason, severity):
        self.rejects.append((origin, reason, severity))

    def export(self, literals, lbd):
        return False


def _gate_solver(engine):
    formula = planted_ksat(12, 40, 3, seed=5)
    solver = Solver(formula, config=berkmin_config(propagation=engine, seed=3))
    return solver


def _snapshot(solver):
    return (
        len(solver.learned),
        len(solver.trail),
        solver.stats.shared_imported,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "frame,reason,severity",
    [
        (
            encode_share_frame(1, 0, 2, (1, 2))[:-1] + b"\x99",
            "bad-crc",
            SEVERITY_HARD,
        ),
        (encode_share_frame(1, 0, 2, (1, 999)), "out-of-range", SEVERITY_HARD),
        (encode_share_frame(1, 0, 2, (1, -1)), "tautology", SEVERITY_HARD),
    ],
)
def test_import_gate_rejects_without_mutation(engine, frame, reason, severity):
    solver = _gate_solver(engine)
    share = FakeShare([(1, frame)])
    solver.share = share
    before = _snapshot(solver)
    attached = solver._import_shared()
    assert attached == 0
    assert _snapshot(solver) == before
    assert share.rejects == [(1, reason, severity)]
    assert solver.stats.shared_rejected == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_import_gate_attaches_rup_unit(engine):
    # (1 2) and (1 -2) make the unit clause (1) RUP: asserting -1 forces
    # both 2 and -2.  The import must attach it at level 0 and propagate.
    from repro.cnf.formula import CnfFormula

    formula = CnfFormula(num_variables=3, clauses=[[1, 2], [1, -2], [2, 3]])
    solver = Solver(formula, config=berkmin_config(propagation=engine, seed=3))
    share = FakeShare([(1, encode_share_frame(1, 0, 1, (1,)))])
    solver.share = share
    attached = solver._import_shared()
    assert attached == 1
    assert solver.stats.shared_imported == 1
    assert share.rejects == []
    assert solver.value_of(1) == TRUE


def test_import_gate_arena_eliminated_variable_is_benign():
    solver = _gate_solver("arena")
    solver._eliminated_mark[2] = True
    share = FakeShare([(1, encode_share_frame(1, 0, 2, (2, 3)))])
    solver.share = share
    before = _snapshot(solver)
    assert solver._import_shared() == 0
    assert _snapshot(solver) == before
    assert share.rejects == [(1, "eliminated-variable", SEVERITY_BENIGN)]


@pytest.mark.parametrize("engine", ENGINES)
def test_import_gate_parks_unproven_then_gives_up(engine):
    # queens(4) implies nothing about (1 2): the RUP probe stays
    # inconclusive, so the clause parks for _PARKING_TTL rounds and is
    # then rejected benignly — never hard.
    solver = Solver(
        queens_formula(4), config=berkmin_config(propagation=engine, seed=3)
    )
    share = FakeShare([(1, encode_share_frame(1, 0, 2, (1, 2)))])
    solver.share = share
    for round_index in range(Solver._PARKING_TTL - 1):
        assert solver._import_shared() == 0
        assert share.rejects == [], round_index
    assert solver._import_shared() == 0
    assert share.rejects == [(1, "rup-unproven", SEVERITY_BENIGN)]
    assert solver.stats.shared_imported == 0


# ------------------------------------------------------------ adaptation
def test_mutate_config_tries_the_engine_lever_first():
    config = config_by_name("berkmin", seed=11)
    mutated, label = mutate_config(config, 0)
    assert label == "engine=arena"
    assert mutated.propagation == "arena"
    assert mutated.seed != config.seed
    assert mutated.name.startswith("berkmin+")


def test_mutate_config_walks_past_no_op_mutations():
    # A lane already on the arena engine skips engine=arena and lands
    # on the next entry that actually changes the config.
    config = config_by_name("berkmin", seed=11, propagation="arena")
    mutated, label = mutate_config(config, 0)
    assert label == "engine=split"
    assert mutated.propagation == "split"


def test_adaptive_manager_preempts_clear_loser_only():
    manager = AdaptiveLaneManager(
        interval_seconds=0.0, warmup_seconds=0.0, min_samples=2
    )
    manager.record_launch(0, now=0.0)
    manager.record_launch(1, now=0.0)
    for _ in range(4):
        manager.observe(0, {"props_per_sec": 50_000, "conflicts_per_sec": 400})
        manager.observe(1, {"props_per_sec": 40_000, "conflicts_per_sec": 300})
    # Close race: nobody is preempted.
    assert manager.pick_victim(5.0, [0, 1]) is None
    for _ in range(4):
        manager.observe(1, {"props_per_sec": 10, "conflicts_per_sec": 0})
    victim = manager.pick_victim(10.0, [0, 1])
    assert victim == 1
    mutated, label = manager.mutate(1, config_by_name("chaff", seed=2))
    assert manager.adaptations[1] == 1
    assert label


def test_adaptive_manager_respects_warmup_and_budget():
    manager = AdaptiveLaneManager(
        interval_seconds=0.0, warmup_seconds=100.0, min_samples=1
    )
    manager.record_launch(0, now=0.0)
    manager.record_launch(1, now=0.0)
    manager.observe(0, {"props_per_sec": 50_000, "conflicts_per_sec": 400})
    manager.observe(1, {"props_per_sec": 1, "conflicts_per_sec": 0})
    # Both lanes still inside warmup: benefit of the doubt.
    assert manager.pick_victim(1.0, [0, 1]) is None


# ----------------------------------------------------- end-to-end fleets
@pytest.mark.fault_injection
def test_poisoned_lane_is_quarantined_and_answer_stays_correct():
    """The poison soak, small: lane 0 exports corrupted/unsound clauses
    throughout, yet the fleet's answer is correct, verified, and the
    poisoner is quarantined once the hard evidence crosses the
    threshold."""
    formula = pigeonhole_formula(6)
    portfolio = PortfolioSolver(
        [config_by_name("berkmin", seed=1), config_by_name("chaff", seed=2)],
        jobs=2,
        retry=1,
        verification="full",
        fault_plan=FaultPlan.single(FAULT_CORRUPT_SHARE, worker=0),
        share=True,
    )
    result = portfolio.solve(formula, max_seconds=60.0)
    assert result.status is SolveStatus.UNSAT
    assert result.verified == "proof"
    assert result.stats.lane_restarts >= 1  # the poisoner was quarantined


@pytest.mark.fault_injection
def test_sharing_fleet_honest_lanes_never_quarantined():
    formula = pigeonhole_formula(6)
    portfolio = PortfolioSolver(
        [config_by_name("berkmin", seed=1), config_by_name("chaff", seed=2)],
        jobs=2,
        verification="full",
        share=True,
    )
    result = portfolio.solve(formula, max_seconds=60.0)
    assert result.status is SolveStatus.UNSAT
    assert result.verified == "proof"
    assert result.stats.lane_restarts == 0
