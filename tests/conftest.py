"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.cnf.formula import CnfFormula
from repro.solver.config import CONFIG_FACTORIES, config_by_name


def random_formula(rng: random.Random, max_variables: int = 8, max_clauses: int = 24) -> CnfFormula:
    """A small random CNF for oracle comparisons (may be SAT or UNSAT)."""
    num_variables = rng.randint(1, max_variables)
    num_clauses = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(num_clauses):
        arity = min(rng.randint(1, 3), num_variables)
        variables = rng.sample(range(1, num_variables + 1), arity)
        clauses.append([variable * rng.choice((1, -1)) for variable in variables])
    return CnfFormula(clauses, num_variables=num_variables)


@pytest.fixture(params=sorted(CONFIG_FACTORIES))
def any_config(request):
    """Every named solver configuration, with fast test-sized constants."""
    return config_by_name(
        request.param, restart_interval=9, activity_decay_interval=16
    )
