"""Cross-cutting integration and invariant tests.

These tie the subsystems together: preprocessing feeding the solver,
proofs surviving reshuffling, implication-graph invariants holding
mid-search under every configuration, and the full
generate -> write -> parse -> solve -> verify pipeline.
"""

import random

import pytest

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.dimacs import parse_dimacs, write_dimacs
from repro.cnf.elimination import preprocess
from repro.cnf.formula import CnfFormula
from repro.cnf.shuffle import shuffle_formula
from repro.proof import check_rup_proof
from repro.solver.config import CONFIG_FACTORIES, config_by_name
from repro.solver.graph import ImplicationGraph
from repro.solver.solver import Solver


def _random_formula(rng, max_vars=8, max_clauses=24):
    n = rng.randint(2, max_vars)
    clauses = [
        [v * rng.choice((1, -1)) for v in rng.sample(range(1, n + 1), min(rng.randint(1, 3), n))]
        for _ in range(rng.randint(2, max_clauses))
    ]
    return CnfFormula(clauses, num_variables=n)


def test_preprocess_agrees_with_direct_solve_across_configs():
    rng = random.Random(21)
    for trial in range(25):
        formula = _random_formula(rng)
        direct = brute_force_satisfiable(formula)
        reduction = preprocess(formula, max_growth=rng.randint(0, 4))
        if reduction.unsat:
            assert not direct
            continue
        config = config_by_name(rng.choice(sorted(CONFIG_FACTORIES)), restart_interval=8)
        result = Solver(reduction.formula, config=config).solve()
        assert result.is_sat == direct
        if result.is_sat:
            full = reduction.extend_model(result.model)
            for variable in range(1, formula.num_variables + 1):
                full.setdefault(variable, False)
            assert formula.evaluate(full)


def test_proofs_survive_reshuffling():
    """UNSAT proofs of reshuffled instances check against the reshuffled CNF."""
    from repro.generators.pigeonhole import pigeonhole_formula

    base = pigeonhole_formula(5)
    for seed in range(3):
        shuffled = shuffle_formula(base, seed)
        solver = Solver(
            shuffled, config=config_by_name("berkmin", proof_logging=True, restart_interval=30)
        )
        result = solver.solve()
        assert result.is_unsat
        assert check_rup_proof(shuffled, result.proof)


def test_implication_graph_invariants_mid_search_all_configs():
    from repro.generators.pigeonhole import pigeonhole_formula

    for name in sorted(CONFIG_FACTORIES):
        solver = Solver(pigeonhole_formula(6), config=config_by_name(name))
        solver.solve(max_decisions=25)
        graph = ImplicationGraph.from_solver(solver)
        graph.check_acyclic_and_ordered()


def test_dimacs_roundtrip_through_solver():
    rng = random.Random(5)
    for trial in range(15):
        formula = _random_formula(rng)
        reparsed = parse_dimacs(write_dimacs(formula))
        first = Solver(formula).solve()
        second = Solver(reparsed).solve()
        assert first.status is second.status


def test_incremental_equivalence_checking_flow():
    """A realistic EDA flow: one solver, many output checks via assumptions."""
    from repro.circuits import build_miter, encode_circuit, pipelined_alu
    from repro.circuits.random_circuit import rewrite_circuit

    reference = pipelined_alu(3, 2, "reference")
    optimized = pipelined_alu(3, 2, "optimized")
    miter = build_miter(reference, optimized)
    encoding = encode_circuit(miter)
    solver = Solver(encoding.formula)
    # Check each per-bit difference net separately, reusing learned clauses.
    difference_variables = [
        encoding.variable(net) for net in encoding.variables if net.startswith("diff")
    ]
    assert difference_variables
    for variable in difference_variables:
        result = solver.solve(assumptions=[variable])
        assert result.is_unsat and result.under_assumptions
    # The miter output itself is also unreachable.
    final = solver.solve(assumptions=[encoding.variable("miter_out")])
    assert final.is_unsat


def test_solver_reuse_across_many_calls():
    """Stats accumulate and answers stay correct over repeated solves."""
    rng = random.Random(33)
    solver = Solver(CnfFormula(num_variables=6))
    reference = CnfFormula(num_variables=6)
    for _ in range(30):
        clause = [
            v * rng.choice((1, -1)) for v in rng.sample(range(1, 7), rng.randint(1, 3))
        ]
        reference.add_clause(clause)
        solver.add_clause(clause)
        expected = brute_force_satisfiable(reference)
        result = solver.solve()
        assert result.is_sat == expected
        if not expected:
            break


@pytest.mark.parametrize("config_name", ["berkmin", "chaff", "berkmin561"])
def test_generated_families_end_to_end(config_name, tmp_path):
    """generate -> file -> parse -> solve -> expected status, per family."""
    from repro.cli import main

    cases = [
        (["generate", "hole", "--size", "4", "-o"], 20),
        (["generate", "queens", "--size", "6", "-o"], 10),
        (["generate", "xor", "--size", "10", "--extra", "8", "-o"], 10),
        (["generate", "adder", "--size", "4", "-o"], 20),
    ]
    for arguments, expected_code in cases:
        path = str(tmp_path / "instance.cnf")
        assert main(arguments + [path]) == 0
        assert main(["solve", path, "--config", config_name]) == expected_code
