"""Unit tests for the literal encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf.literals import (
    FALSE,
    TRUE,
    UNASSIGNED,
    decode_literal,
    encode_literal,
    is_negative,
    literal_for,
    negate_literal,
    variable_of,
)

dimacs_literals = st.integers(min_value=1, max_value=10_000).flatmap(
    lambda v: st.sampled_from([v, -v])
)


def test_encode_examples():
    assert encode_literal(1) == 2
    assert encode_literal(-1) == 3
    assert encode_literal(3) == 6
    assert encode_literal(-3) == 7


def test_decode_examples():
    assert decode_literal(2) == 1
    assert decode_literal(3) == -1
    assert decode_literal(6) == 3
    assert decode_literal(7) == -3


def test_zero_is_rejected():
    with pytest.raises(ValueError):
        encode_literal(0)


def test_decode_rejects_variable_zero():
    with pytest.raises(ValueError):
        decode_literal(0)
    with pytest.raises(ValueError):
        decode_literal(1)


@given(dimacs_literals)
def test_roundtrip(literal):
    assert decode_literal(encode_literal(literal)) == literal


@given(dimacs_literals)
def test_negation_is_involution(literal):
    encoded = encode_literal(literal)
    assert negate_literal(negate_literal(encoded)) == encoded
    assert decode_literal(negate_literal(encoded)) == -literal


@given(dimacs_literals)
def test_variable_and_sign(literal):
    encoded = encode_literal(literal)
    assert variable_of(encoded) == abs(literal)
    assert is_negative(encoded) == (literal < 0)


@given(st.integers(min_value=1, max_value=10_000), st.booleans())
def test_literal_for(variable, value):
    encoded = literal_for(variable, value)
    assert variable_of(encoded) == variable
    assert is_negative(encoded) == (not value)


def test_literal_for_rejects_bad_variable():
    with pytest.raises(ValueError):
        literal_for(0, True)


def test_truth_constants_are_distinct():
    assert len({TRUE, FALSE, UNASSIGNED}) == 3
    assert UNASSIGNED < 0 <= FALSE < TRUE
