"""Subsumption and bounded variable elimination."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_model, brute_force_satisfiable
from repro.cnf.elimination import (
    eliminate_variable,
    preprocess,
    subsumption_reduce,
)
from repro.cnf.formula import CnfFormula


def test_subsumption_drops_supersets():
    reduced = subsumption_reduce([[1, 2, 3], [1, 2], [2, 3, 4], [1, 2, 3, 4]])
    assert sorted(map(sorted, reduced)) == [[1, 2], [2, 3, 4]]


def test_subsumption_deduplicates():
    reduced = subsumption_reduce([[2, 1], [1, 2], [1, 2]])
    assert reduced == [[1, 2]]


def test_self_subsuming_resolution_strengthens():
    # (1 | 2) strengthens (-1 | 2 | 3) to (2 | 3).
    reduced = subsumption_reduce([[1, 2], [-1, 2, 3]])
    assert sorted(map(sorted, reduced)) == [[1, 2], [2, 3]]


def test_eliminate_variable_basic():
    clauses = [[1, 2], [-1, 3], [2, 3]]
    outcome = eliminate_variable(clauses, 1)
    assert outcome not in (None, "unsat")
    new_clauses, removed = outcome
    assert sorted(map(sorted, removed)) == [[-1, 3], [1, 2]]
    assert sorted(map(sorted, new_clauses)) == [[2, 3], [2, 3]]


def test_eliminate_variable_detects_refutation():
    assert eliminate_variable([[1], [-1]], 1) == "unsat"


def test_eliminate_variable_respects_growth_bound():
    # 3 positive x 3 negative = up to 9 resolvents > 6 originals.
    clauses = [[1, i] for i in (2, 3, 4)] + [[-1, i] for i in (5, 6, 7)]
    assert eliminate_variable(clauses, 1, max_growth=0) is None
    assert eliminate_variable(clauses, 1, max_growth=10) is not None


def test_eliminate_absent_variable_is_noop():
    clauses = [[2, 3]]
    new_clauses, removed = eliminate_variable(clauses, 9)
    assert new_clauses == [[2, 3]] and removed == []


def test_preprocess_shrinks_and_preserves_status():
    formula = CnfFormula([[1, 2], [-1, 3], [-2, 3], [-3, 4], [2, 4, 5]])
    result = preprocess(formula)
    assert not result.unsat
    assert result.formula.num_clauses <= formula.num_clauses
    assert brute_force_satisfiable(formula)


def test_preprocess_detects_unsat():
    result = preprocess(CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]]))
    assert result.unsat


clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=6).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=16,
)


@settings(max_examples=80, deadline=None)
@given(clauses_strategy, st.integers(0, 6), st.booleans())
def test_preprocess_preserves_satisfiability(clauses, max_growth, use_subsumption):
    formula = CnfFormula(clauses)
    before = brute_force_satisfiable(formula)
    result = preprocess(
        formula, max_growth=max_growth, use_subsumption=use_subsumption
    )
    if result.unsat:
        assert not before
        return
    after = (
        brute_force_satisfiable(result.formula)
        if result.formula.num_clauses
        else True
    )
    assert after == before


@settings(max_examples=60, deadline=None)
@given(clauses_strategy, st.integers(0, 4))
def test_model_reconstruction(clauses, max_growth):
    """A model of the reduced formula must lift to a model of the original."""
    formula = CnfFormula(clauses)
    result = preprocess(formula, max_growth=max_growth)
    if result.unsat:
        return
    if result.formula.num_clauses:
        model = brute_force_model(result.formula)
        if model is None:
            return
    else:
        model = {}
    full = result.extend_model(model)
    for variable in range(1, formula.num_variables + 1):
        full.setdefault(variable, False)
    assert formula.evaluate(full)


def test_preprocess_then_solve_pipeline():
    """End-to-end: preprocess, solve the residue, reconstruct, verify."""
    from repro.generators.random_ksat import planted_ksat
    from repro.solver.solver import Solver

    formula = planted_ksat(30, 100, 3, seed=7)
    result = preprocess(formula, max_growth=4)
    assert not result.unsat
    solve_result = Solver(result.formula).solve()
    assert solve_result.is_sat
    full = result.extend_model(solve_result.model)
    assert formula.evaluate(full)


def test_preprocess_keeps_variable_numbering():
    formula = CnfFormula([[1, 2], [-2, 3]], num_variables=5)
    result = preprocess(formula)
    assert result.formula.num_variables == 5
