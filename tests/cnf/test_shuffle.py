"""Unit and property tests for instance reshuffling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_model, brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.cnf.shuffle import shuffle_formula, unshuffle_model


def test_shapes_are_preserved():
    formula = CnfFormula([[1, -2], [2, 3], [-3]])
    shuffled = shuffle_formula(formula, seed=1)
    assert shuffled.num_variables == formula.num_variables
    assert sorted(len(c) for c in shuffled.clauses) == sorted(
        len(c) for c in formula.clauses
    )


def test_deterministic_for_seed():
    formula = CnfFormula([[1, -2], [2, 3], [-3]])
    assert shuffle_formula(formula, seed=5).clauses == shuffle_formula(formula, seed=5).clauses


def test_different_seeds_differ():
    formula = CnfFormula([[1, -2, 3], [2, 3, 4], [-3, -4]])
    variants = {tuple(map(tuple, shuffle_formula(formula, seed=s).clauses)) for s in range(6)}
    assert len(variants) > 1


clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=7).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=60, deadline=None)
@given(clauses_strategy, st.integers(0, 1000), st.booleans())
def test_shuffle_preserves_satisfiability(clauses, seed, flip):
    formula = CnfFormula(clauses)
    shuffled = shuffle_formula(formula, seed, flip_polarities=flip)
    assert brute_force_satisfiable(formula) == brute_force_satisfiable(shuffled)


@settings(max_examples=40, deadline=None)
@given(clauses_strategy, st.integers(0, 1000))
def test_unshuffle_maps_models_back(clauses, seed):
    formula = CnfFormula(clauses)
    shuffled = shuffle_formula(formula, seed)
    model = brute_force_model(shuffled)
    if model is None:
        return
    original_model = unshuffle_model(model, formula, seed)
    assert formula.evaluate(original_model)
