"""Unit and property tests for formula preprocessing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_satisfiable
from repro.cnf.formula import CnfFormula
from repro.cnf.simplify import clean_clause, simplify_formula


def test_clean_clause_removes_duplicates():
    assert clean_clause([1, 1, -2, 1]) == [1, -2]


def test_clean_clause_detects_tautology():
    assert clean_clause([1, -1]) is None
    assert clean_clause([2, 1, -2]) is None


def test_units_are_propagated():
    formula = CnfFormula([[1], [-1, 2], [-2, 3], [3, 4]])
    result = simplify_formula(formula)
    assert not result.unsat
    assert result.forced == {1: True, 2: True, 3: True}
    assert result.formula.num_clauses == 0


def test_conflicting_units_refute():
    result = simplify_formula(CnfFormula([[1], [-1]]))
    assert result.unsat
    assert result.formula.clauses == [[]]


def test_unit_chain_refutes():
    result = simplify_formula(CnfFormula([[1], [-1, 2], [-2], [3]]))
    assert result.unsat


def test_pure_literal_elimination():
    formula = CnfFormula([[1, 2], [1, 3], [-2, 3]])
    result = simplify_formula(formula, pure_literals=True)
    assert not result.unsat
    # 1 is pure positive; eliminating it satisfies the first two clauses,
    # then 3 becomes pure positive and clears the rest.
    assert result.formula.num_clauses == 0
    assert result.forced[1] is True


def test_tautologies_are_dropped():
    result = simplify_formula(CnfFormula([[1, -1], [2, 2]]))
    assert result.formula.clauses == [[2]] or result.forced.get(2) is True


def test_extend_model():
    formula = CnfFormula([[1], [2, 3]])
    result = simplify_formula(formula)
    extended = result.extend_model({2: True, 3: False})
    assert extended[1] is True and extended[2] is True


clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=7).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=16,
)


@settings(max_examples=80, deadline=None)
@given(clauses_strategy, st.booleans())
def test_simplification_preserves_satisfiability(clauses, pure):
    formula = CnfFormula(clauses)
    result = simplify_formula(formula, pure_literals=pure)
    before = brute_force_satisfiable(formula)
    if result.unsat:
        assert not before
        return
    after = brute_force_satisfiable(result.formula) if result.formula.num_clauses else True
    assert after == before


@settings(max_examples=60, deadline=None)
@given(clauses_strategy)
def test_forced_assignments_are_consistent_with_some_model(clauses):
    """Every forced assignment appears in some model of the original formula."""
    formula = CnfFormula(clauses)
    result = simplify_formula(formula)
    if result.unsat or not brute_force_satisfiable(formula):
        return
    # Extend a brute-force model of the simplified formula and check it.
    from repro.baselines.brute import brute_force_model

    if result.formula.num_clauses:
        model = brute_force_model(result.formula)
        assert model is not None
    else:
        model = {}
    full = result.extend_model(model or {})
    rng = random.Random(0)
    for variable in range(1, formula.num_variables + 1):
        full.setdefault(variable, rng.random() < 0.5)
    assert formula.evaluate(full)
