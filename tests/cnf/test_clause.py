"""Unit tests for the Clause object."""

from repro.cnf.clause import Clause
from repro.cnf.literals import encode_literal


def test_from_dimacs_roundtrip():
    clause = Clause.from_dimacs([1, -2, 3])
    assert clause.to_dimacs() == [1, -2, 3]
    assert len(clause) == 3


def test_defaults():
    clause = Clause.from_dimacs([1, 2])
    assert not clause.learned
    assert clause.activity == 0
    assert clause.birth == 0
    assert not clause.protected


def test_learned_flag_and_birth():
    clause = Clause.from_dimacs([1], learned=True)
    clause.birth = 42
    assert clause.learned
    assert clause.birth == 42


def test_iteration_and_containment():
    clause = Clause.from_dimacs([1, -2])
    assert list(clause) == [encode_literal(1), encode_literal(-2)]
    assert encode_literal(-2) in clause
    assert encode_literal(2) not in clause


def test_repr_mentions_kind():
    assert "original" in repr(Clause.from_dimacs([1]))
    assert "learned" in repr(Clause.from_dimacs([1], learned=True))
