"""Unit tests for the DIMACS reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf.dimacs import DimacsError, parse_dimacs, write_dimacs
from repro.cnf.formula import CnfFormula

BASIC = """\
c a comment
p cnf 3 2
1 -2 0
2 3 -1 0
"""


def test_parse_basic():
    formula = parse_dimacs(BASIC)
    assert formula.num_variables == 3
    assert formula.clauses == [[1, -2], [2, 3, -1]]
    assert "a comment" in formula.comment


def test_parse_multiline_clause():
    formula = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
    assert formula.clauses == [[1, -2, 3]]


def test_parse_multiple_clauses_per_line():
    formula = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
    assert formula.clauses == [[1], [-2]]


def test_parse_missing_terminator_tolerated():
    formula = parse_dimacs("p cnf 2 1\n1 2\n")
    assert formula.clauses == [[1, 2]]


def test_parse_headerless():
    formula = parse_dimacs("1 2 0\n-1 0\n")
    assert formula.num_variables == 2
    assert formula.clauses == [[1, 2], [-1]]


def test_parse_percent_end_marker():
    formula = parse_dimacs("p cnf 2 1\n1 2 0\n%\n0\n")
    assert formula.clauses == [[1, 2]]


def test_parse_clause_count_mismatch_recorded():
    formula = parse_dimacs("p cnf 2 5\n1 0\n")
    assert "declared 5" in formula.comment


def test_parse_rejects_bad_header():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 2\n1 0\n")
    with pytest.raises(DimacsError):
        parse_dimacs("p dnf 2 1\n1 0\n")
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf -1 1\n1 0\n")


def test_parse_rejects_duplicate_header():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")


def test_parse_rejects_garbage_token():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 1 1\n1 x 0\n")


def test_write_contains_header_and_comments():
    formula = CnfFormula([[1, -2]], comment="hello")
    text = write_dimacs(formula)
    assert "c hello" in text
    assert "p cnf 2 1" in text
    assert "1 -2 0" in text


def test_file_roundtrip(tmp_path):
    from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file

    formula = CnfFormula([[1, -2], [2]], comment="roundtrip")
    path = tmp_path / "x.cnf"
    write_dimacs_file(formula, path)
    loaded = parse_dimacs_file(path)
    assert loaded.clauses == formula.clauses
    assert loaded.num_variables == formula.num_variables


clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=9).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=5,
    ),
    max_size=12,
)


@given(clauses_strategy)
def test_roundtrip_property(clauses):
    formula = CnfFormula(clauses)
    reparsed = parse_dimacs(write_dimacs(formula))
    assert reparsed.clauses == formula.clauses
    assert reparsed.num_variables == formula.num_variables
