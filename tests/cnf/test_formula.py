"""Unit tests for CnfFormula."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf.formula import CnfFormula


def test_empty_formula():
    formula = CnfFormula()
    assert formula.num_variables == 0
    assert formula.num_clauses == 0
    assert formula.evaluate({})


def test_add_clause_grows_variables():
    formula = CnfFormula()
    formula.add_clause([3, -7])
    assert formula.num_variables == 7
    assert formula.num_clauses == 1


def test_add_clause_rejects_zero():
    formula = CnfFormula()
    with pytest.raises(ValueError):
        formula.add_clause([1, 0])


def test_add_clause_rejects_non_int():
    formula = CnfFormula()
    with pytest.raises(ValueError):
        formula.add_clause(["x"])


def test_new_variable_allocates_fresh():
    formula = CnfFormula([[1, 2]])
    assert formula.new_variable() == 3
    assert formula.new_variable() == 4


def test_copy_is_deep():
    formula = CnfFormula([[1, 2]])
    duplicate = formula.copy()
    duplicate.clauses[0].append(3)
    duplicate.add_clause([4])
    assert formula.clauses == [[1, 2]]
    assert formula.num_variables == 2


def test_evaluate_and_falsified():
    formula = CnfFormula([[1, 2], [-1, 2], [-2, 1]])
    assert formula.evaluate({1: True, 2: True})
    assert not formula.evaluate({1: False, 2: False})
    assert formula.falsified_clauses({1: False, 2: False}) == [[1, 2]]


def test_evaluate_requires_complete_assignment():
    formula = CnfFormula([[1, 2]])
    with pytest.raises(KeyError):
        formula.evaluate({1: False})


def test_variables_and_literal_count():
    formula = CnfFormula([[1, -3], [3]])
    assert formula.variables() == {1, 3}
    assert formula.literal_count() == 3


def test_negative_num_variables_rejected():
    with pytest.raises(ValueError):
        CnfFormula(num_variables=-1)


@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=10,
    ),
    st.dictionaries(st.integers(1, 6), st.booleans()),
)
def test_evaluate_matches_python_semantics(clauses, partial_model):
    formula = CnfFormula(clauses)
    model = {variable: partial_model.get(variable, False) for variable in range(1, 7)}
    expected = all(
        any(model[abs(literal)] == (literal > 0) for literal in clause)
        for clause in clauses
    )
    assert formula.evaluate(model) == expected
