"""The brute-force oracle itself."""

import pytest

from repro.baselines.brute import brute_force_model, brute_force_satisfiable
from repro.cnf.formula import CnfFormula


def test_sat_model_is_returned_and_valid():
    formula = CnfFormula([[1, 2], [-1], [2]])
    model = brute_force_model(formula)
    assert model == {1: False, 2: True}
    assert formula.evaluate(model)


def test_unsat_returns_none():
    formula = CnfFormula([[1], [-1]])
    assert brute_force_model(formula) is None
    assert not brute_force_satisfiable(formula)


def test_empty_formula_is_sat():
    assert brute_force_satisfiable(CnfFormula())


def test_empty_clause_is_unsat():
    formula = CnfFormula()
    formula.clauses.append([])
    assert not brute_force_satisfiable(formula)


def test_size_guard():
    with pytest.raises(ValueError):
        brute_force_satisfiable(CnfFormula(num_variables=25))
    assert brute_force_satisfiable(CnfFormula(num_variables=40), max_variables=50) or True
