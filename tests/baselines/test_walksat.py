"""WalkSAT local search."""

from repro.baselines.walksat import walksat
from repro.cnf.formula import CnfFormula
from repro.generators.random_ksat import planted_ksat


def test_finds_model_on_easy_formula():
    formula = CnfFormula([[1, 2], [-1, 2], [3]])
    model = walksat(formula, seed=1)
    assert model is not None
    assert formula.evaluate(model)


def test_finds_model_on_planted_instance():
    formula = planted_ksat(40, 150, 3, seed=2)
    model = walksat(formula, seed=3)
    assert model is not None
    assert formula.evaluate(model)


def test_gives_up_on_unsat():
    formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    assert walksat(formula, seed=0, max_flips=2_000, max_restarts=2) is None


def test_empty_clause_returns_none():
    formula = CnfFormula()
    formula.clauses.append([])
    assert walksat(formula) is None


def test_deterministic_for_seed():
    formula = planted_ksat(20, 70, 3, seed=4)
    assert walksat(formula, seed=5) == walksat(formula, seed=5)
