"""The learning-free DPLL baseline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_satisfiable
from repro.baselines.dpll import DpllSolver
from repro.cnf.formula import CnfFormula

clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=7).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=18,
)


@settings(max_examples=80, deadline=None)
@given(clauses_strategy, st.booleans())
def test_dpll_matches_brute_force(clauses, pure_literals):
    formula = CnfFormula(clauses)
    expected = brute_force_satisfiable(formula)
    result = DpllSolver(formula, use_pure_literals=pure_literals).solve()
    assert result.satisfiable == expected
    if result.satisfiable:
        assert formula.evaluate(result.model)


def test_empty_formula():
    result = DpllSolver(CnfFormula()).solve()
    assert result.satisfiable is True
    assert result.model == {}


def test_empty_clause():
    formula = CnfFormula()
    formula.clauses.append([])
    assert DpllSolver(formula).solve().satisfiable is False


def test_decision_budget():
    from repro.generators.pigeonhole import pigeonhole_formula

    result = DpllSolver(pigeonhole_formula(7)).solve(max_decisions=3)
    assert result.satisfiable is None


def test_time_budget():
    from repro.generators.pigeonhole import pigeonhole_formula
    import time

    started = time.perf_counter()
    result = DpllSolver(pigeonhole_formula(9)).solve(max_seconds=0.2)
    assert result.satisfiable is None
    assert time.perf_counter() - started < 5.0


def test_counters_track_work():
    formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    result = DpllSolver(formula).solve()
    assert result.satisfiable is False
    assert result.decisions >= 1


def test_model_covers_unconstrained_variables():
    formula = CnfFormula([[1]], num_variables=5)
    result = DpllSolver(formula).solve()
    assert set(result.model) == {1, 2, 3, 4, 5}


def test_dpll_needs_more_decisions_than_cdcl_on_pigeonhole():
    """The motivation for clause learning, in miniature."""
    from repro.generators.pigeonhole import pigeonhole_formula
    from repro.solver.solver import Solver

    formula = pigeonhole_formula(5)
    dpll = DpllSolver(formula).solve()
    cdcl = Solver(formula).solve()
    assert dpll.satisfiable is False and cdcl.is_unsat
    assert dpll.decisions > 0 and cdcl.stats.decisions > 0
