"""Trace bus: sinks, schema validation, and the solver's event stream."""

import json

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    CallbackSink,
    JsonlTraceSink,
    MultiSink,
    RingBufferSink,
    TraceFormatError,
    read_trace,
    require_valid_event,
    validate_event,
)
from repro.solver.config import config_by_name
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def test_every_schema_type_has_type_in_required_fields():
    for kind, (required, optional) in EVENT_SCHEMA.items():
        assert "type" in required
        assert not (required & optional), kind


def test_validate_event_accepts_a_minimal_valid_event():
    event = {"type": "solve_end", "conflicts": 3, "status": "UNSAT"}
    assert validate_event(event) is None
    assert require_valid_event(event) is event


def test_validate_event_rejects_unknown_type_missing_and_extra_fields():
    assert "unknown event type" in validate_event({"type": "nope"})
    assert "missing field" in validate_event({"type": "solve_end", "conflicts": 1})
    assert "unknown field" in validate_event(
        {"type": "solve_end", "conflicts": 1, "status": "SAT", "bogus": 1}
    )
    assert "must be an int" in validate_event(
        {"type": "solve_end", "conflicts": 1.5, "status": "SAT"}
    )
    assert "not a dict" in validate_event([1, 2])


def test_validate_event_checks_enumerated_fields():
    decision = {
        "type": "decision",
        "conflicts": 0,
        "decisions": 1,
        "level": 1,
        "literal": 4,
        "source": "psychic",
        "skin_distance": None,
    }
    assert "source" in validate_event(decision)
    checkpoint = {"type": "checkpoint", "action": "sideways", "conflicts": 0}
    assert "action" in validate_event(checkpoint)
    with pytest.raises(TraceFormatError):
        require_valid_event(checkpoint)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def test_ring_buffer_sink_keeps_only_the_newest_events():
    sink = RingBufferSink(capacity=3)
    for index in range(5):
        sink.emit({"type": "solve_end", "conflicts": index, "status": "SAT"})
    assert len(sink) == 3
    assert [event["conflicts"] for event in sink.events] == [2, 3, 4]
    sink.clear()
    assert len(sink) == 0
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_callback_and_multi_sink_fan_out(tmp_path):
    seen = []
    ring = RingBufferSink()
    fan = MultiSink(CallbackSink(seen.append), ring)
    event = {"type": "solve_end", "conflicts": 1, "status": "UNSAT"}
    fan.emit(event)
    fan.close()
    assert seen == [event]
    assert ring.events == [event]


def test_jsonl_sink_round_trips_through_read_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = [
        {"type": "solve_start", "conflicts": 0, "decisions": 0, "config": "berkmin",
         "variables": 3, "clauses": 5},
        {"type": "solve_end", "conflicts": 7, "status": "UNSAT"},
    ]
    with JsonlTraceSink(path) as sink:
        for event in events:
            sink.emit(event)
        assert sink.events_written == 2
    assert list(read_trace(path)) == events


def test_jsonl_sink_is_lazy_and_pickles_to_append_mode(tmp_path):
    import pickle

    path = tmp_path / "lazy.jsonl"
    sink = JsonlTraceSink(path)
    assert not path.exists()  # no event, no file
    sink.emit({"type": "solve_end", "conflicts": 1, "status": "SAT"})
    sink.close()
    copy = pickle.loads(pickle.dumps(sink))
    copy.emit({"type": "solve_end", "conflicts": 2, "status": "SAT"})
    copy.close()
    # The unpickled copy appended instead of clobbering.
    assert [event["conflicts"] for event in read_trace(path)] == [1, 2]


def test_read_trace_reports_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"solve_end","conflicts":1,"status":"SAT"}\nnot json\n')
    with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
        list(read_trace(path))
    path.write_text('{"type":"mystery"}\n')
    with pytest.raises(TraceFormatError, match="unknown event type"):
        list(read_trace(path))


# ----------------------------------------------------------------------
# The solver's event stream
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hole5_trace():
    sink = RingBufferSink(capacity=100_000)
    config = config_by_name("berkmin", trace=sink)
    result = Solver(pigeonhole_formula(5), config).solve()
    assert result.status is SolveStatus.UNSAT
    return sink.events, result


def test_solver_emits_only_schema_valid_events(hole5_trace):
    events, _ = hole5_trace
    assert events, "tracing produced no events"
    for event in events:
        assert validate_event(event) is None, event
    assert {event["type"] for event in events} >= {
        "solve_start", "decision", "conflict", "solve_end",
    }
    assert set(EVENT_TYPES) >= {event["type"] for event in events}


def test_solver_trace_brackets_the_solve(hole5_trace):
    events, result = hole5_trace
    assert events[0]["type"] == "solve_start"
    assert events[0]["config"] == "berkmin"
    assert events[-1] == {
        "type": "solve_end",
        "conflicts": result.stats.conflicts,
        "status": "UNSAT",
    }


def test_solver_trace_counts_match_stats(hole5_trace):
    events, result = hole5_trace
    decisions = [event for event in events if event["type"] == "decision"]
    conflicts = [event for event in events if event["type"] == "conflict"]
    assert len(decisions) == result.stats.decisions
    # Level-0 conflicts (the final UNSAT step) learn nothing and emit no
    # conflict event, so the event count may trail the counter slightly.
    assert 0 <= result.stats.conflicts - len(conflicts) <= 1
    top = [event for event in decisions if event["source"] == "top_clause"]
    assert len(top) == result.stats.top_clause_decisions
    for event in top:
        assert event["skin_distance"] >= 0
    for event in decisions:
        if event["source"] != "top_clause":
            assert event["skin_distance"] is None


def test_conflicts_counter_is_monotone_across_the_trace(hole5_trace):
    events, _ = hole5_trace
    counters = [
        event["conflicts"] for event in events if "conflicts" in event
    ]
    assert counters == sorted(counters)


def test_trace_disabled_leaves_no_sink_on_the_solver():
    solver = Solver(pigeonhole_formula(3), config_by_name("berkmin"))
    assert solver.trace is None
    assert solver.metrics is None
    assert solver.solve().status is SolveStatus.UNSAT


def test_restart_and_reduce_events_fire_on_a_hard_instance():
    sink = RingBufferSink(capacity=200_000)
    config = config_by_name("berkmin", trace=sink, restart_interval=64)
    Solver(pigeonhole_formula(6), config).solve()
    kinds = {event["type"] for event in sink.events}
    assert "restart" in kinds
    assert "reduce" in kinds
    for event in sink.events:
        if event["type"] == "reduce":
            assert event["kept"] + event["dropped"] == event["learned_before"]
            assert (
                event["young_kept"] + event["young_dropped"]
                + event["old_kept"] + event["old_dropped"]
            ) == event["learned_before"]
        if event["type"] == "restart":
            assert event["restarts"] >= 1


def test_trace_events_are_json_serializable(hole5_trace):
    events, _ = hole5_trace
    for event in events[:200]:
        json.loads(json.dumps(event))


# ----------------------------------------------------------------------
# Arena inprocessing events
# ----------------------------------------------------------------------
def test_arena_inprocess_events_are_schema_valid_and_counted():
    sink = RingBufferSink(8192)
    config = config_by_name(
        "arena", restart_interval=20, inprocess_interval=1, trace=sink
    )
    solver = Solver(pigeonhole_formula(6), config=config)
    result = solver.solve()
    assert result.status is SolveStatus.UNSAT
    events = [e for e in sink.events if e["type"] == "inprocess"]
    assert len(events) == solver.stats.inprocess_passes > 0
    for event in events:
        assert require_valid_event(event) is event
        assert event["eliminated"] >= 0
        assert event["freed_words"] >= 0
        assert event["wall_ms"] >= 0
    assert sum(e["eliminated"] for e in events) == solver.stats.eliminated_variables
