"""Unit tests for the request-scoped span layer."""

import json

from repro.observability import (
    REQUEST_PHASES,
    IdMinter,
    RingBufferSink,
    SpanTracker,
    chrome_trace,
    chrome_trace_from_events,
    phase_of,
    validate_event,
)


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(trace=None):
    clock = FakeClock()
    tracker = SpanTracker(
        trace, minter=IdMinter(token="cafe01"), clock=clock
    )
    return tracker, clock


def test_phase_of_collapses_attempts():
    assert phase_of("solve-attempt-0") == "solve"
    assert phase_of("solve-attempt-17") == "solve"
    for phase in REQUEST_PHASES:
        if phase != "solve":
            assert phase_of(phase) == phase


def test_minter_is_deterministic_with_token_and_unique_without():
    minted = IdMinter(token="abc123")
    assert minted.mint() == "req-abc123-000000"
    assert minted.mint() == "req-abc123-000001"
    assert IdMinter().mint() != IdMinter().mint()


def test_tracker_builds_a_complete_tree():
    tracker, clock = make_tracker()
    rid = tracker.begin_request("solve", "client-1")
    assert rid == "req-cafe01-000000"
    assert tracker.open_count == 1

    span = tracker.begin(rid, "validate")
    clock.advance(0.010)
    tracker.end(rid, span, status="ok")

    span = tracker.begin(rid, "admit")
    clock.advance(0.005)
    tracker.end(rid, span, status="ok")

    span = tracker.begin(rid, "queue")
    clock.advance(0.100)
    tracker.end(rid, span, status="ok")

    span = tracker.begin(rid, "solve-attempt-0", attempt=0)
    clock.advance(0.500)
    tracker.end(rid, span, status="ok", conflicts=1234)

    tracker.record(rid, "verify", 0.020)
    tree = tracker.finish_request(rid, "result")

    assert tracker.open_count == 0
    assert tracker.finished == 1
    assert tree["request_id"] == rid
    assert tree["op"] == "solve"
    assert tree["reply_kind"] == "result"
    assert tree["complete"] is True
    assert tree["attempts"] == 1
    assert tree["duration_seconds"] == 0.615
    assert tree["phases"]["validate"] == 0.010
    assert tree["phases"]["admit"] == 0.005
    assert tree["phases"]["queue"] == 0.100
    assert tree["phases"]["solve"] == 0.500
    assert tree["phases"]["verify"] == 0.020
    names = [span["name"] for span in tree["spans"]]
    assert names == [
        "request", "validate", "admit", "queue", "solve-attempt-0", "verify",
    ]
    # Children hang off the root.
    root_id = tree["spans"][0]["span_id"]
    assert all(span["parent_id"] == root_id for span in tree["spans"][1:])


def test_finish_closes_stragglers_as_unfinished():
    tracker, clock = make_tracker()
    rid = tracker.begin_request("solve", "c")
    tracker.begin(rid, "queue")
    clock.advance(1.0)
    tree = tracker.finish_request(rid, "deadline")
    assert tree["complete"] is True  # finish closed it...
    straggler = tree["spans"][1]
    assert straggler["status"] == "unfinished"  # ...but said so honestly


def test_end_is_idempotent_and_ignores_unknown_ids():
    tracker, clock = make_tracker()
    rid = tracker.begin_request("solve", "c")
    span = tracker.begin(rid, "validate")
    clock.advance(0.010)
    tracker.end(rid, span)
    clock.advance(5.0)
    tracker.end(rid, span)  # second end must not stretch the span
    tracker.end(rid, "s999999")  # unknown span id: no-op
    tracker.end("req-nope-000000", span)  # unknown request: no-op
    tree = tracker.finish_request(rid, "result")
    assert tree["phases"]["validate"] == 0.010
    # Operations against a sealed request are also no-ops.
    assert tracker.begin(rid, "late") is None
    assert tracker.record(rid, "late", 0.1) is None
    assert tracker.finish_request(rid) is None


def test_open_requests_reports_oldest_first_with_open_spans():
    tracker, clock = make_tracker()
    old = tracker.begin_request("solve", "a")
    tracker.begin(old, "queue")
    clock.advance(2.0)
    young = tracker.begin_request("solve", "b")
    clock.advance(1.0)
    rows = tracker.open_requests()
    assert [row["request_id"] for row in rows] == [old, young]
    assert rows[0]["age_seconds"] == 3.0
    assert rows[0]["open_spans"] == ["queue"]
    assert tracker.open_requests(limit=1) == rows[:1]


def test_completed_history_is_bounded():
    tracker, _ = make_tracker()
    tracker.completed = type(tracker.completed)(maxlen=2)
    for index in range(5):
        rid = tracker.begin_request("ping", "c")
        tracker.finish_request(rid, "pong")
    assert tracker.finished == 5
    assert len(tracker.completed) == 2


def test_mirrored_events_are_schema_valid():
    sink = RingBufferSink()
    tracker, clock = make_tracker(sink)
    rid = tracker.begin_request("solve", "client-7")
    span = tracker.begin(rid, "solve-attempt-1", attempt=1,
                         resumed_from_conflicts=250)
    clock.advance(0.25)
    tracker.end(rid, span, status="ok", conflicts=900)
    tracker.finish_request(rid, "result")

    assert [event["type"] for event in sink.events] == [
        "span_start", "span_start", "span_end", "span_end",
    ]
    for event in sink.events:
        assert validate_event(event) is None, (event, validate_event(event))
    start = sink.events[1]
    assert start["attempt"] == 1
    assert start["resumed_from_conflicts"] == 250
    end = sink.events[2]
    assert end["duration_ms"] == 250.0
    assert end["conflicts"] == 900
    root_end = sink.events[3]
    assert root_end["name"] == "request"
    assert root_end["kind"] == "result"


def test_chrome_trace_from_trees_is_well_formed():
    tracker, clock = make_tracker()
    rid = tracker.begin_request("solve", "c")
    span = tracker.begin(rid, "validate")
    clock.advance(0.010)
    tracker.end(rid, span, status="ok")
    tree = tracker.finish_request(rid, "result")

    exported = chrome_trace([tree])
    assert exported["displayTimeUnit"] == "ms"
    events = exported["traceEvents"]
    meta = [event for event in events if event["ph"] == "M"]
    spans = [event for event in events if event["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["args"]["name"] == rid
    assert {event["name"] for event in spans} == {"request", "validate"}
    for event in spans:
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["ts"] >= 0 and event["dur"] >= 0
    json.dumps(exported)  # must be JSON-serializable as-is


def test_chrome_trace_from_events_pairs_and_flags_orphans():
    sink = RingBufferSink()
    tracker, clock = make_tracker(sink)
    rid = tracker.begin_request("solve", "c")
    done = tracker.begin(rid, "validate")
    clock.advance(0.010)
    tracker.end(rid, done, status="ok")
    tracker.begin(rid, "queue")  # started, never ended
    events = sink.events

    exported = chrome_trace_from_events(events)
    spans = {e["name"]: e for e in exported["traceEvents"] if e["ph"] == "X"}
    assert spans["validate"]["dur"] == 10000.0  # 10ms in microseconds
    assert spans["queue"]["dur"] == 0.0
    assert spans["queue"]["args"] == {"incomplete": True}
    # The earliest span is normalized to ts 0.
    assert min(e["ts"] for e in exported["traceEvents"] if e["ph"] == "X") == 0

    # Filtering to an unknown request exports nothing.
    empty = chrome_trace_from_events(events, request_id="req-other-000000")
    assert empty["traceEvents"] == []
