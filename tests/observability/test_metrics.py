"""Metrics instruments, the registry, and the solver-attached collector."""

import csv
import json

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    skin_percentile,
    write_rows_csv,
    write_rows_jsonl,
)
from repro.solver.config import config_by_name
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negatives():
    counter = Counter("conflicts")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.add(-1)


def test_gauge_holds_the_latest_level():
    gauge = Gauge("learned")
    gauge.set(10)
    gauge.set(3)
    assert gauge.value == 3


def test_histogram_is_exact_below_reservoir_capacity():
    histogram = Histogram("depth", size=100)
    for value in range(50):
        histogram.observe(value)
    assert histogram.observed == 50
    assert histogram.quantile(0.0) == 0
    assert histogram.quantile(1.0) == 49
    summary = histogram.summary()
    assert summary["min"] == 0 and summary["max"] == 49
    assert summary["p50"] == 25


def test_histogram_reservoir_bounds_memory_and_stays_deterministic():
    first = Histogram("a", size=16, seed=3)
    second = Histogram("b", size=16, seed=3)
    for value in range(10_000):
        first.observe(value)
        second.observe(value)
    assert len(first.reservoir) == 16
    assert first.reservoir == second.reservoir  # seeded Algorithm R
    assert first.observed == 10_000
    # min/max track the true stream, not the sample.
    assert first.summary()["min"] == 0 and first.summary()["max"] == 9_999


def test_histogram_quantile_edge_cases():
    histogram = Histogram("empty")
    assert histogram.quantile(0.5) is None
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("tiny", size=0)


def test_histogram_tiny_samples_clamp_to_true_extremes():
    # A p99 extrapolated from one or two points is noise; below three
    # observations quantiles answer with the true stream min/max.
    one = Histogram("one")
    one.observe(7.0)
    assert one.quantile(0.25) == 7.0
    assert one.quantile(0.5) == 7.0
    assert one.quantile(0.99) == 7.0
    two = Histogram("two")
    two.observe(10.0)
    two.observe(2.0)
    assert two.quantile(0.0) == 2.0
    assert two.quantile(0.49) == 2.0
    assert two.quantile(0.5) == 10.0
    assert two.quantile(0.99) == 10.0
    # From three observations on, the sampled quantile takes over.
    three = Histogram("three")
    for value in (1.0, 2.0, 3.0):
        three.observe(value)
    assert three.quantile(0.5) == 2.0


def test_registry_creates_on_first_touch_and_snapshots_flat():
    registry = MetricsRegistry()
    registry.counter("conflicts").add(7)
    assert registry.counter("conflicts").value == 7  # same instrument
    registry.gauge("learned").set(2)
    registry.histogram("depth").observe(5)
    row = registry.snapshot()
    assert row["conflicts"] == 7
    assert row["learned"] == 2
    assert row["depth_count"] == 1 and row["depth_p50"] == 5


def test_skin_percentile_walks_the_cumulative_histogram():
    histogram = {0: 50, 1: 30, 5: 15, 40: 5}
    assert skin_percentile(histogram, 0.50) == 0
    assert skin_percentile(histogram, 0.90) == 5
    assert skin_percentile(histogram, 1.00) == 40
    assert skin_percentile({}, 0.5) is None


# ----------------------------------------------------------------------
# The solver-attached collector
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metered_solver():
    config = config_by_name("berkmin", metrics_interval=64)
    solver = Solver(pigeonhole_formula(6), config)
    result = solver.solve()
    assert result.status is SolveStatus.UNSAT
    return solver, result


def test_collector_appends_periodic_and_closing_rows(metered_solver):
    solver, result = metered_solver
    rows = solver.metrics.rows
    assert len(rows) >= 2  # periodic cadence plus the closing row
    assert rows[-1]["conflicts"] == result.stats.conflicts
    conflicts = [row["conflicts"] for row in rows]
    assert conflicts == sorted(conflicts)
    for row in rows:
        assert row["props_per_sec"] >= 0.0
        assert row["elapsed_seconds"] >= 0.0
        assert 0.0 <= row["top_clause_fraction"] <= 1.0
        assert row["skin_p50"] is not None
    # Rows carry a monotonic stamp so they join against other
    # monotonic-clock telemetry (spans, watchdogs) without wall skew,
    # and the stamps never run backwards.
    stamps = [row["monotonic_ms"] for row in rows]
    assert all(isinstance(stamp, float) for stamp in stamps)
    assert stamps == sorted(stamps)


def test_collector_finish_is_idempotent(metered_solver):
    solver, _ = metered_solver
    count = len(solver.metrics.rows)
    solver.metrics.finish(solver.stats)
    assert len(solver.metrics.rows) == count


def test_trivial_solve_still_produces_a_series():
    config = config_by_name("berkmin", metrics_interval=512)
    solver = Solver(pigeonhole_formula(2), config)
    solver.solve()
    assert len(solver.metrics.rows) >= 1


def test_collector_export_picks_format_by_extension(tmp_path, metered_solver):
    solver, _ = metered_solver
    csv_path = tmp_path / "series.csv"
    jsonl_path = tmp_path / "series.jsonl"
    solver.metrics.export(csv_path)
    solver.metrics.export(jsonl_path)

    with open(csv_path, newline="") as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == len(solver.metrics.rows)
    assert int(parsed[-1]["conflicts"]) == solver.metrics.rows[-1]["conflicts"]

    lines = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    assert lines == solver.metrics.rows


def test_row_writers_union_columns_and_blank_missing_values(tmp_path):
    rows = [{"a": 1}, {"a": 2, "b": None}, {"b": 3}]
    path = tmp_path / "rows.csv"
    write_rows_csv(path, rows)
    with open(path, newline="") as handle:
        parsed = list(csv.DictReader(handle))
    assert parsed == [
        {"a": "1", "b": ""},
        {"a": "2", "b": ""},
        {"a": "", "b": "3"},
    ]
    jsonl = tmp_path / "rows.jsonl"
    write_rows_jsonl(jsonl, rows)
    assert [json.loads(line) for line in jsonl.read_text().splitlines()] == rows


def test_metrics_interval_zero_attaches_no_collector():
    solver = Solver(pigeonhole_formula(3), config_by_name("berkmin"))
    assert solver.metrics is None
