"""CLI surface of the telemetry layer: flags, verbs, and exit codes."""

import csv
import json

import pytest

from repro.cli import main
from repro.cnf.dimacs import write_dimacs_file
from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import read_trace, summarize_trace, validate_event


def _write(tmp_path, formula, name="f.cnf"):
    path = tmp_path / name
    write_dimacs_file(formula, path)
    return str(path)


def test_solve_trace_and_metrics_out_produce_valid_artifacts(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(6))
    trace_path = tmp_path / "t.jsonl"
    metrics_path = tmp_path / "m.csv"
    code = main([
        "solve", cnf,
        "--trace-out", str(trace_path),
        "--metrics-out", str(metrics_path),
        "--metrics-interval", "128",
    ])
    out = capsys.readouterr().out
    assert code == 20
    assert "c trace written to" in out
    assert "c metrics written to" in out

    events = list(read_trace(trace_path))  # read_trace validates every line
    assert events[0]["type"] == "solve_start"
    assert events[-1]["type"] == "solve_end"
    kinds = {event["type"] for event in events}
    assert {"decision", "conflict"} <= kinds

    with open(metrics_path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) >= 2  # interval 128 on a ~700-conflict solve
    assert float(rows[-1]["props_per_sec"]) >= 0.0
    assert rows[0]["skin_p50"] != ""


def test_trace_summary_text_and_json(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(5))
    trace_path = tmp_path / "t.jsonl"
    assert main(["solve", cnf, "--trace-out", str(trace_path)]) == 20
    capsys.readouterr()

    assert main(["trace-summary", str(trace_path)]) == 0
    text = capsys.readouterr().out
    assert "decision-source mix" in text
    assert "skin distance" in text
    assert "top_clause" in text

    assert main(["trace-summary", str(trace_path), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary == summarize_trace(trace_path)
    assert summary["decision_source_mix"]["top_clause"] > 0.5


def test_trace_summary_skips_unknown_event_types(tmp_path, capsys):
    # Unknown event *types* are forward-compat skipped with a counted
    # warning (a trace from a newer schema still summarises)...
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type":"mystery"}\n')
    assert main(["trace-summary", str(bad)]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 event(s) of unknown type" in captured.out
    assert "mystery=1" in captured.out


def test_trace_summary_rejects_corrupt_known_event(tmp_path, capsys):
    # ...but a *known* type with missing fields is corruption, refused.
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type":"conflict"}\n')
    assert main(["trace-summary", str(bad)]) == 2
    assert "repro-sat: error:" in capsys.readouterr().err


def test_trace_summary_missing_file_is_one_line_error(tmp_path, capsys):
    assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "repro-sat: error:" in capsys.readouterr().err


def test_solve_dashboard_warns_on_sequential_path(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(3))
    assert main(["solve", cnf, "--dashboard"]) == 20
    assert "--dashboard applies to the parallel engines" in capsys.readouterr().err


def test_batch_dashboard_and_trace_flags(tmp_path, capsys):
    files = [
        _write(tmp_path, pigeonhole_formula(3), "a.cnf"),
        _write(tmp_path, pigeonhole_formula(4), "b.cnf"),
    ]
    trace_path = tmp_path / "t.jsonl"
    code = main([
        "batch", *files, "--jobs", "2",
        "--dashboard", "--trace-out", str(trace_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "fleet: 2 lanes" in captured.err
    assert "lane 0: done (UNSAT)" in captured.err
    assert "fleet finished: " in captured.err
    # A healthy fleet emits no supervision events — and says so.
    assert "c trace written to" in captured.out
    assert "(0 events)" in captured.out


def test_portfolio_dashboard_renders_lanes(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", cnf, "--portfolio", "--jobs", "2", "--dashboard"])
    captured = capsys.readouterr()
    assert code == 20
    assert "fleet: 2 lanes" in captured.err
    assert "fleet finished: UNSAT by" in captured.err


def test_audit_round_metrics_and_trace(tmp_path, capsys):
    trace_path = tmp_path / "audit.jsonl"
    metrics_path = tmp_path / "rounds.csv"
    code = main([
        "audit", "--rounds", "2", "--seed", "0",
        "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
    ])
    assert code == 0
    events = list(read_trace(trace_path))
    assert len(events) == 2
    for event in events:
        assert event["type"] == "audit_round"
        assert validate_event(event) is None
        assert event["ok"] is True
    with open(metrics_path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert [row["round"] for row in rows] == ["0", "1"]


def test_keyboard_interrupt_exits_130(tmp_path, capsys, monkeypatch):
    import repro.parallel

    def boom(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(repro.parallel, "solve_batch", boom)
    cnf = _write(tmp_path, pigeonhole_formula(3))
    assert main(["batch", cnf, "--dashboard"]) == 130
    assert "repro-sat: interrupted" in capsys.readouterr().err


def test_bench_report_header_records_sha_and_metrics_interval(tmp_path, capsys):
    out_path = tmp_path / "BENCH.json"
    code = main(["bench", "--scale", "quick", "--repeats", "1",
                 "--no-agreement", "--out", str(out_path)])
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["metrics_interval"] == 0  # timed runs pay no telemetry
    sha = report["git_sha"]
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))
