"""CLI surface of the telemetry layer: flags, verbs, and exit codes."""

import csv
import json

import pytest

from repro.cli import main
from repro.cnf.dimacs import write_dimacs_file
from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import read_trace, summarize_trace, validate_event


def _write(tmp_path, formula, name="f.cnf"):
    path = tmp_path / name
    write_dimacs_file(formula, path)
    return str(path)


def test_solve_trace_and_metrics_out_produce_valid_artifacts(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(6))
    trace_path = tmp_path / "t.jsonl"
    metrics_path = tmp_path / "m.csv"
    code = main([
        "solve", cnf,
        "--trace-out", str(trace_path),
        "--metrics-out", str(metrics_path),
        "--metrics-interval", "128",
    ])
    out = capsys.readouterr().out
    assert code == 20
    assert "c trace written to" in out
    assert "c metrics written to" in out

    events = list(read_trace(trace_path))  # read_trace validates every line
    assert events[0]["type"] == "solve_start"
    assert events[-1]["type"] == "solve_end"
    kinds = {event["type"] for event in events}
    assert {"decision", "conflict"} <= kinds

    with open(metrics_path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) >= 2  # interval 128 on a ~700-conflict solve
    assert float(rows[-1]["props_per_sec"]) >= 0.0
    assert rows[0]["skin_p50"] != ""


def test_trace_summary_text_and_json(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(5))
    trace_path = tmp_path / "t.jsonl"
    assert main(["solve", cnf, "--trace-out", str(trace_path)]) == 20
    capsys.readouterr()

    assert main(["trace-summary", str(trace_path)]) == 0
    text = capsys.readouterr().out
    assert "decision-source mix" in text
    assert "skin distance" in text
    assert "top_clause" in text

    assert main(["trace-summary", str(trace_path), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary == summarize_trace(trace_path)
    assert summary["decision_source_mix"]["top_clause"] > 0.5


def test_trace_summary_skips_unknown_event_types(tmp_path, capsys):
    # Unknown event *types* are forward-compat skipped with a counted
    # warning (a trace from a newer schema still summarises)...
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type":"mystery"}\n')
    assert main(["trace-summary", str(bad)]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 event(s) of unknown type" in captured.out
    assert "mystery=1" in captured.out


def test_trace_summary_rejects_corrupt_known_event(tmp_path, capsys):
    # ...but a *known* type with missing fields is corruption, refused.
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type":"conflict"}\n')
    assert main(["trace-summary", str(bad)]) == 2
    assert "repro-sat: error:" in capsys.readouterr().err


def test_trace_summary_missing_file_is_one_line_error(tmp_path, capsys):
    assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "repro-sat: error:" in capsys.readouterr().err


def test_solve_dashboard_warns_on_sequential_path(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(3))
    assert main(["solve", cnf, "--dashboard"]) == 20
    assert "--dashboard applies to the parallel engines" in capsys.readouterr().err


def test_batch_dashboard_and_trace_flags(tmp_path, capsys):
    files = [
        _write(tmp_path, pigeonhole_formula(3), "a.cnf"),
        _write(tmp_path, pigeonhole_formula(4), "b.cnf"),
    ]
    trace_path = tmp_path / "t.jsonl"
    code = main([
        "batch", *files, "--jobs", "2",
        "--dashboard", "--trace-out", str(trace_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "fleet: 2 lanes" in captured.err
    assert "lane 0: done (UNSAT)" in captured.err
    assert "fleet finished: " in captured.err
    # A healthy fleet emits no supervision events — and says so.
    assert "c trace written to" in captured.out
    assert "(0 events)" in captured.out


def test_portfolio_dashboard_renders_lanes(tmp_path, capsys):
    cnf = _write(tmp_path, pigeonhole_formula(5))
    code = main(["solve", cnf, "--portfolio", "--jobs", "2", "--dashboard"])
    captured = capsys.readouterr()
    assert code == 20
    assert "fleet: 2 lanes" in captured.err
    assert "fleet finished: UNSAT by" in captured.err


def test_audit_round_metrics_and_trace(tmp_path, capsys):
    trace_path = tmp_path / "audit.jsonl"
    metrics_path = tmp_path / "rounds.csv"
    code = main([
        "audit", "--rounds", "2", "--seed", "0",
        "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
    ])
    assert code == 0
    events = list(read_trace(trace_path))
    assert len(events) == 2
    for event in events:
        assert event["type"] == "audit_round"
        assert validate_event(event) is None
        assert event["ok"] is True
    with open(metrics_path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert [row["round"] for row in rows] == ["0", "1"]


def test_keyboard_interrupt_exits_130(tmp_path, capsys, monkeypatch):
    import repro.parallel

    def boom(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(repro.parallel, "solve_batch", boom)
    cnf = _write(tmp_path, pigeonhole_formula(3))
    assert main(["batch", cnf, "--dashboard"]) == 130
    assert "repro-sat: interrupted" in capsys.readouterr().err


def test_bench_report_header_records_sha_and_metrics_interval(tmp_path, capsys):
    out_path = tmp_path / "BENCH.json"
    code = main(["bench", "--scale", "quick", "--repeats", "1",
                 "--no-agreement", "--out", str(out_path)])
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["metrics_interval"] == 0  # timed runs pay no telemetry
    sha = report["git_sha"]
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


# ----------------------------------------------------------------------
# Service-trace verbs: trace-summary --service and trace-export
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service_trace(tmp_path_factory):
    """A real service trace: one traced solve through a 1-worker pool."""
    import time

    from repro.observability import JsonlTraceSink
    from repro.server.protocol import Request
    from repro.server.service import SolverService
    from repro.solver.config import config_by_name

    path = tmp_path_factory.mktemp("svc") / "service.jsonl"
    with JsonlTraceSink(path) as sink:
        service = SolverService(
            pool_size=1, config=config_by_name("berkmin", seed=5), trace=sink
        )
        try:
            replies: list = []
            service.handle(
                Request(op="solve", request_id=1, clauses=[[1], [2]]),
                "cli-test",
                replies.append,
            )
            deadline = time.monotonic() + 60.0
            while not replies and time.monotonic() < deadline:
                service.tick()
                time.sleep(0.01)
            assert replies and replies[0]["kind"] == "result"
        finally:
            service.close()
    return path


def test_trace_summary_service_text_and_json(service_trace, capsys):
    assert main(["trace-summary", str(service_trace), "--service"]) == 0
    text = capsys.readouterr().out
    assert "service trace summary:" in text
    assert "requests by op:" in text
    assert "phase latency (ms):" in text
    assert "span trees: 1 traced, 1 complete" in text

    assert main(["trace-summary", str(service_trace), "--service", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["requests_by_op"] == {"solve": 1}
    assert summary["replies_by_kind"] == {"result": 1}
    assert summary["requests_incomplete"] == []
    assert summary["phase_latency_ms"]["solve"]["count"] >= 1


def test_plain_trace_summary_tolerates_span_events(service_trace, capsys):
    # The classic search summary must not choke on a service trace —
    # span events are known types it simply counts.
    assert main(["trace-summary", str(service_trace)]) == 0
    out = capsys.readouterr().out
    assert "span_start=" in out and "span_end=" in out


def test_trace_export_writes_chrome_trace_json(service_trace, tmp_path, capsys):
    out_path = tmp_path / "timeline.json"
    assert main(["trace-export", str(service_trace), "-o", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "c exported" in captured.out and str(out_path) in captured.out

    exported = json.loads(out_path.read_text())
    assert exported["displayTimeUnit"] == "ms"
    events = exported["traceEvents"]
    spans = [event for event in events if event.get("ph") == "X"]
    names = {event["name"] for event in spans}
    assert {"request", "validate", "admit", "queue", "solve-attempt-0"} <= names
    for event in spans:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["pid"] == 1 and isinstance(event["tid"], int)
    # Exactly one request thread, named with the correlation ID.
    metas = [event for event in events if event.get("ph") == "M"]
    assert len(metas) == 1
    assert metas[0]["args"]["name"].startswith("req-")


def test_trace_export_filters_by_request_id(service_trace, tmp_path, capsys):
    out_path = tmp_path / "empty.json"
    code = main([
        "trace-export", str(service_trace),
        "-o", str(out_path), "--request", "req-nonexistent-000000",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "c exported 0 spans" in captured.out
    assert "no span events found" in captured.err
    assert json.loads(out_path.read_text())["traceEvents"] == []


def test_trace_export_missing_file_is_one_line_error(tmp_path, capsys):
    code = main([
        "trace-export", str(tmp_path / "nope.jsonl"), "-o", str(tmp_path / "o.json")
    ])
    assert code == 2
    assert "repro-sat: error:" in capsys.readouterr().err
