"""Zero-cost-when-disabled: tracing must not tax the BCP hot loops.

Two layers of enforcement, both fast enough for tier-1:

* a **static guard** — the bytecode of both propagation engines must
  never reference the trace/metrics machinery at all, so the hot loops
  cannot pay even a ``None``-check per propagation;
* an **A/B timing smoke** — solving the same pinned instance with
  tracing disabled must stay within 3% of the propagation rate of an
  identical solve, and enabling a sink must not change the search
  (identical conflict/decision/propagation counts).
"""

import time

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import RingBufferSink, TraceSink
from repro.solver.config import config_by_name
from repro.solver.solver import Solver

pytestmark = pytest.mark.perf_smoke

#: Tracing disabled may cost at most this fraction of propagation rate.
_MAX_DISABLED_REGRESSION = 0.03
#: The span layer's vocabulary is forbidden too: correlation IDs are a
#: *supervisor*-side concern and must never leak into worker hot loops.
_FORBIDDEN_NAMES = (
    "trace", "metrics", "emit", "last_decision_source",
    "span", "spans", "ops", "request_id", "trace_context",
)


@pytest.mark.parametrize("engine", ["_propagate_split", "_propagate_general"])
def test_bcp_hot_loops_never_touch_the_telemetry_layer(engine):
    names = getattr(Solver, engine).__code__.co_names
    for forbidden in _FORBIDDEN_NAMES:
        assert forbidden not in names, (
            f"{engine} references {forbidden!r}: the BCP hot loop must "
            "stay telemetry-free (see docs/OBSERVABILITY.md)"
        )


def _propagation_rate(trace) -> tuple[float, tuple[int, int, int]]:
    """Best-of-5 props/sec for a pinned hole-6 solve under ``trace``."""
    best = 0.0
    counts = None
    for _ in range(5):
        config = config_by_name("berkmin", trace=trace)
        solver = Solver(pigeonhole_formula(6), config)
        started = time.perf_counter()
        result = solver.solve()
        elapsed = time.perf_counter() - started
        assert result.is_unsat
        stats = result.stats
        counts = (stats.conflicts, stats.decisions, stats.propagations)
        best = max(best, stats.propagations / max(elapsed, 1e-9))
    return best, counts


def test_disabled_tracing_costs_under_three_percent():
    # Warm both paths once so neither side pays first-run compilation.
    _propagation_rate(None)
    enabled_rate, enabled_counts = _propagation_rate(RingBufferSink(1 << 20))
    disabled_rate, disabled_counts = _propagation_rate(None)

    # Emitting events must not change the search itself.
    assert enabled_counts == disabled_counts

    assert disabled_rate >= (1.0 - _MAX_DISABLED_REGRESSION) * enabled_rate, (
        f"tracing disabled ran at {disabled_rate:,.0f} props/s vs "
        f"{enabled_rate:,.0f} with a sink attached — the disabled path "
        "must never be the slow one"
    )


def test_noop_sink_solve_matches_untraced_counts():
    untraced = Solver(pigeonhole_formula(5), config_by_name("berkmin")).solve()
    traced = Solver(
        pigeonhole_formula(5), config_by_name("berkmin", trace=TraceSink())
    ).solve()
    assert untraced.status is traced.status
    assert untraced.stats.conflicts == traced.stats.conflicts
    assert untraced.stats.decisions == traced.stats.decisions
    assert untraced.stats.propagations == traced.stats.propagations
