"""trace-summary aggregation: the Table-3-shaped report over a trace."""

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import (
    JsonlTraceSink,
    TraceFormatError,
    format_summary,
    summarize_trace,
)
from repro.observability.summary import _distribution
from repro.solver.config import config_by_name
from repro.solver.solver import Solver


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "hole6.jsonl"
    with JsonlTraceSink(path) as sink:
        config = config_by_name("berkmin", trace=sink, restart_interval=64)
        result = Solver(pigeonhole_formula(6), config).solve()
    return path, result


def test_distribution_shapes():
    assert _distribution([]) == {"count": 0}
    dist = _distribution([3, 1, 2])
    assert dist["count"] == 3
    assert dist["min"] == 1 and dist["max"] == 3
    assert dist["mean"] == 2.0
    assert dist["p50"] == 2


def test_summarize_trace_reports_the_table3_evidence(recorded_trace):
    path, result = recorded_trace
    summary = summarize_trace(path)
    assert summary["events"] == sum(summary["by_type"].values())
    assert summary["decisions"] == result.stats.decisions
    mix = summary["decision_source_mix"]
    assert set(mix) == {"top_clause", "global", "vsids", "random"}
    assert abs(sum(mix.values()) - 1.0) < 0.01
    # BerkMin on pigeonhole decides overwhelmingly on the top clause
    # (the paper's Section 5 claim — the observability layer must show it).
    assert mix["top_clause"] > 0.5
    assert summary["skin_distance"]["count"] == result.stats.top_clause_decisions
    assert summary["skin_distance"]["p50"] <= summary["skin_distance"]["p99"]
    assert summary["lbd"]["count"] > 0
    assert summary["restarts"]["count"] >= 1
    assert summary["max_conflicts"] == result.stats.conflicts
    assert summary["solves"] == [
        {"status": "UNSAT", "conflicts": result.stats.conflicts, "limit_reason": None}
    ]


def test_format_summary_renders_every_section(recorded_trace):
    path, _ = recorded_trace
    text = format_summary(summarize_trace(path))
    for needle in (
        "trace summary:",
        "decision-source mix",
        "top_clause",
        "skin distance",
        "lbd",
        "restarts:",
        "db reductions:",
        "solves:",
        "UNSAT",
    ):
        assert needle in text


def test_summarize_trace_refuses_malformed_input(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"decision"}\n')
    with pytest.raises(TraceFormatError, match="missing field"):
        summarize_trace(path)


def test_summarize_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    summary = summarize_trace(path)
    assert summary["events"] == 0
    assert summary["decisions"] == 0
    assert summary["skin_distance"] == {"count": 0}
    assert "(no samples)" in format_summary(summary)


def test_fleet_events_land_in_the_fleet_section(tmp_path):
    path = tmp_path / "fleet.jsonl"
    with JsonlTraceSink(path) as sink:
        sink.emit({"type": "worker_fault", "lane": 0, "attempt": 0,
                   "reason": "worker crashed (SIGKILL)", "will_retry": True})
        sink.emit({"type": "worker_retry", "lane": 0, "attempt": 1,
                   "resumed_from_conflicts": 300})
        sink.emit({"type": "audit_round", "round": 0, "engine": "batch",
                   "fault": "crash", "ok": False, "detail": "boom"})
    summary = summarize_trace(path)
    assert summary["fleet"] == {
        "faults": 1, "retries": 1, "audit_rounds": 1, "audit_failures": 1,
    }
    assert "fleet: 1 faults, 1 retries" in format_summary(summary)


def test_sharing_events_land_in_the_sharing_section(tmp_path):
    path = tmp_path / "sharing.jsonl"
    with JsonlTraceSink(path) as sink:
        sink.emit({"type": "share_export", "lane": 0, "attempt": 0,
                   "seq": 0, "size": 3, "lbd": 2})
        sink.emit({"type": "share_export", "lane": 1, "attempt": 0,
                   "seq": 0, "size": 2, "lbd": 1})
        sink.emit({"type": "share_import", "lane": 1, "count": 4})
        sink.emit({"type": "share_reject", "lane": 0, "reason": "bad-crc",
                   "severity": "hard"})
        sink.emit({"type": "share_reject", "lane": 0, "reason": "bad-crc",
                   "severity": "hard"})
        sink.emit({"type": "share_reject", "lane": 1,
                   "reason": "rup-unproven", "severity": "benign"})
        sink.emit({"type": "lane_quarantine", "lane": 0, "attempt": 0,
                   "rejections": 3, "exported": 7})
        sink.emit({"type": "lane_adapt", "lane": 1, "attempt": 0,
                   "mutation": "restarts=luby", "score": 1.5})
    summary = summarize_trace(path)
    sharing = summary["sharing"]
    assert sharing["exports"] == 2
    assert sharing["imported"] == 4
    assert sharing["import_batches"] == 1
    assert sharing["rejects"] == 3
    assert sharing["reject_reasons"] == {"bad-crc": 2, "rup-unproven": 1}
    assert sharing["quarantines"] == 1
    assert sharing["adaptations"] == 1
    assert sharing["adapt_mutations"] == {"restarts=luby": 1}
    rendered = format_summary(summary)
    assert "clause sharing: 2 exports, 4 clauses imported in 1 batches" in rendered
    assert "bad-crc=2" in rendered
    assert "lanes: 1 quarantined, 1 adapted (restarts=luby=1)" in rendered


def test_summary_skips_unknown_event_types_with_a_warning(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        '{"type": "restart", "conflicts": 10, "restarts": 1, "learned": 5}\n'
        '{"type": "wormhole_sync", "lane": 0, "payload": "??"}\n'
        '{"type": "wormhole_sync", "lane": 1, "payload": "??"}\n'
        '{"type": "quantum_probe", "qubits": 8}\n'
    )
    summary = summarize_trace(path)
    assert summary["events"] == 1  # only the known event is aggregated
    assert summary["unknown_events"] == {
        "count": 3,
        "types": {"quantum_probe": 1, "wormhole_sync": 2},
    }
    rendered = format_summary(summary)
    assert "warning: skipped 3 event(s) of unknown type" in rendered
    assert "wormhole_sync=2" in rendered
    assert "newer schema?" in rendered


def test_summary_still_refuses_corrupt_known_events(tmp_path):
    # Leniency is for the future, not for corruption: a known type with
    # a missing field still fails the whole summary.
    path = tmp_path / "corrupt.jsonl"
    path.write_text('{"type": "share_reject", "lane": 0}\n')
    with pytest.raises(TraceFormatError, match="missing field"):
        summarize_trace(path)


def test_summary_surfaces_arena_inprocessing(tmp_path):
    path = tmp_path / "arena.jsonl"
    with JsonlTraceSink(path) as sink:
        config = config_by_name(
            "arena", trace=sink, restart_interval=20, inprocess_interval=1
        )
        solver = Solver(pigeonhole_formula(6), config).solve()
    summary = summarize_trace(path)
    totals = summary["inprocess"]
    assert totals["passes"] > 0
    assert totals["eliminated"] > 0
    assert totals["freed_words"] >= 0
    assert totals["wall_ms"] >= 0
    rendered = format_summary(summary)
    assert "inprocessing:" in rendered
    assert "variables eliminated" in rendered


# ----------------------------------------------------------------------
# The service-shaped summary (trace-summary --service)
# ----------------------------------------------------------------------
@pytest.fixture()
def service_trace(tmp_path):
    """A hand-built service trace: one clean request, one incomplete."""
    from repro.observability import SpanTracker, IdMinter

    path = tmp_path / "service.jsonl"
    with JsonlTraceSink(path) as sink:
        sink.emit({"type": "server_request", "client": "c1", "op": "solve",
                   "request_id": "req-aa-000000"})
        tracker = SpanTracker(sink, minter=IdMinter(token="aa"))
        rid = tracker.begin_request("solve", "c1", request_id="req-aa-000000")
        span = tracker.begin(rid, "validate")
        tracker.end(rid, span, status="ok")
        span = tracker.begin(rid, "solve-attempt-0", attempt=0)
        tracker.end(rid, span, status="ok", conflicts=12)
        tracker.finish_request(rid, "result")
        sink.emit({"type": "server_reply", "kind": "result", "cached": None,
                   "request_id": rid})
        # A second request whose span never closed (e.g. a crash before
        # the reply) plus an attributed worker fault.
        sink.emit({"type": "server_request", "client": "c2", "op": "solve",
                   "request_id": "req-aa-000009"})
        sink.emit({"type": "span_start", "request_id": "req-aa-000009",
                   "span_id": "s000099", "name": "queue", "ts_ms": 1.0})
        sink.emit({"type": "worker_fault", "lane": 3, "attempt": 0,
                   "reason": "worker crashed", "will_retry": True,
                   "request_id": "req-aa-000009"})
        sink.emit({"type": "worker_retry", "lane": 3, "attempt": 1,
                   "request_id": "req-aa-000009"})
    return path


def test_service_summary_reports_requests_phases_and_completeness(service_trace):
    from repro.observability import summarize_service_trace

    summary = summarize_service_trace(service_trace)
    assert summary["requests_by_op"] == {"solve": 2}
    assert summary["replies_by_kind"] == {"result": 1}
    assert summary["requests_traced"] == 2
    assert summary["requests_complete"] == 1
    assert summary["requests_incomplete"] == ["req-aa-000009"]
    assert summary["phase_latency_ms"]["validate"]["count"] == 1
    assert summary["phase_latency_ms"]["solve"]["count"] == 1
    assert summary["phase_latency_ms"]["request"]["count"] == 1
    assert summary["faults"] == {
        "worker_faults": 1, "worker_retries": 1, "with_request_id": 2,
    }


def test_service_summary_renders_for_terminals(service_trace):
    from repro.observability import (
        format_service_summary,
        summarize_service_trace,
    )

    rendered = format_service_summary(summarize_service_trace(service_trace))
    assert "requests by op:" in rendered
    assert "solve" in rendered
    assert "replies by kind:" in rendered
    assert "phase latency (ms):" in rendered
    assert "span trees: 2 traced, 1 complete" in rendered
    assert "left spans open (req-aa-000009)" in rendered
    assert "1 worker faults, 1 retries (2 attributed to a request)" in rendered


def test_service_summary_of_empty_trace(tmp_path):
    from repro.observability import (
        format_service_summary,
        summarize_service_trace,
    )

    path = tmp_path / "empty.jsonl"
    path.write_text("")
    summary = summarize_service_trace(path)
    assert summary["events"] == 0
    assert summary["requests_traced"] == 0
    rendered = format_service_summary(summary)
    assert "(none)" in rendered and "(no spans in trace)" in rendered
