"""Fleet monitors: recorder, dashboard rendering, and the live batch view."""

import io
import json

import pytest

from repro.generators.pigeonhole import pigeonhole_formula
from repro.observability import (
    LANE_STATES,
    FleetDashboard,
    FleetMonitor,
    FleetRecorder,
    MultiMonitor,
    RingBufferSink,
    validate_event,
)


class _FakeTty(io.StringIO):
    def isatty(self) -> bool:
        return True


def _drive(monitor) -> None:
    """A canonical crash/retry/resume fleet story."""
    monitor.fleet_started(2, labels=["berkmin", "chaff"])
    monitor.lane_state(0, "running")
    monitor.lane_state(1, "running")
    monitor.lane_telemetry(0, {"conflicts": 300, "props_per_sec": 1000.0,
                               "conflicts_per_sec": 50.0})
    monitor.lane_state(0, "retrying", detail="worker crashed (SIGKILL)")
    monitor.lane_state(0, "resumed", attempt=1)
    monitor.lane_state(0, "done", detail="UNSAT", attempt=1)
    monitor.lane_state(1, "done", detail="SAT")
    monitor.fleet_finished("2 lanes ok")
    monitor.close()


def test_lane_states_cover_the_life_cycle():
    assert LANE_STATES == (
        "pending", "running", "retrying", "resumed",
        "quarantined", "adapted", "degraded", "done",
    )


def test_base_monitor_is_a_no_op_context_manager():
    with FleetMonitor() as monitor:
        _drive(monitor)  # must not raise


def test_recorder_captures_transitions_telemetry_and_summary():
    recorder = FleetRecorder()
    _drive(recorder)
    assert recorder.count == 2
    assert recorder.labels == ["berkmin", "chaff"]
    assert recorder.states_of(0) == ["running", "retrying", "resumed", "done"]
    assert recorder.states_of(1) == ["running", "done"]
    assert recorder.telemetry == [
        (0, {"conflicts": 300, "props_per_sec": 1000.0, "conflicts_per_sec": 50.0})
    ]
    assert recorder.summary == "2 lanes ok"
    assert recorder.closed


def test_recorder_exports_telemetry_with_a_lane_column(tmp_path):
    recorder = FleetRecorder()
    _drive(recorder)
    path = tmp_path / "telemetry.jsonl"
    recorder.export_telemetry(path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows == [{"lane": 0, "conflicts": 300, "props_per_sec": 1000.0,
                     "conflicts_per_sec": 50.0}]


def test_multi_monitor_fans_out():
    first, second = FleetRecorder(), FleetRecorder()
    _drive(MultiMonitor(first, second))
    assert first.transitions == second.transitions
    assert first.summary == second.summary == "2 lanes ok"


def test_dashboard_non_tty_prints_one_line_per_transition():
    out = io.StringIO()
    _drive(FleetDashboard(out))
    lines = out.getvalue().splitlines()
    assert lines[0] == "fleet: 2 lanes"
    assert "lane 0: retrying (worker crashed (SIGKILL))" in lines
    assert "lane 0: resumed [attempt 1]" in lines
    assert "lane 0: done (UNSAT) [attempt 1]" in lines
    assert lines[-1] == "fleet finished: 2 lanes ok"
    assert not any("\x1b[" in line for line in lines)  # no ANSI off-TTY


def test_dashboard_tty_redraws_an_ansi_panel():
    out = _FakeTty()
    dashboard = FleetDashboard(out, refresh_seconds=0.0)
    _drive(dashboard)
    text = out.getvalue()
    assert "\x1b[" in text  # in-place redraws
    assert "fleet 2/2" in text
    assert "✓" in text and "↻" in text
    assert "1,000 props/s" in text
    assert text.rstrip().endswith("fleet finished: 2 lanes ok")


def test_dashboard_renders_fleet_detours_and_share_throughput():
    out = _FakeTty()
    dashboard = FleetDashboard(out, refresh_seconds=0.0)
    dashboard.fleet_started(2, labels=["berkmin", "chaff"])
    dashboard.lane_state(0, "running")
    dashboard.lane_state(1, "running")
    dashboard.lane_telemetry(
        0, {"props_per_sec": 1000.0, "conflicts_per_sec": 50.0,
            "shared_per_sec": 4.5}
    )
    dashboard.lane_state(0, "quarantined", detail="6 rejected frames")
    dashboard.lane_state(1, "adapted", detail="restarts=luby", attempt=1)
    dashboard.fleet_finished("done")
    text = out.getvalue()
    assert "☣" in text and "♻" in text
    assert "4.5 shares/s" in text


def test_dashboard_non_tty_logs_quarantine_transition():
    out = io.StringIO()
    dashboard = FleetDashboard(out)
    dashboard.fleet_started(2)
    dashboard.lane_state(0, "quarantined", detail="byzantine sharing")
    dashboard.fleet_finished("done")
    assert "lane 0: quarantined (byzantine sharing)" in out.getvalue()


def test_dashboard_eta_appears_when_some_lanes_finish():
    out = _FakeTty()
    dashboard = FleetDashboard(out, refresh_seconds=0.0)
    dashboard.fleet_started(4)
    dashboard.lane_state(0, "running")
    dashboard.lane_state(0, "done")
    assert "eta ~" in out.getvalue()


def test_dashboard_survives_a_closed_stream():
    out = io.StringIO()
    dashboard = FleetDashboard(out)
    dashboard.fleet_started(1)
    out.close()
    dashboard.lane_state(0, "running")  # must not raise
    dashboard.fleet_finished("ok")
    dashboard.close()


def test_dashboard_ignores_out_of_range_lanes():
    out = io.StringIO()
    dashboard = FleetDashboard(out)
    dashboard.fleet_started(1)
    dashboard.lane_state(7, "running")
    assert "lane 7" not in out.getvalue()


# ----------------------------------------------------------------------
# The acceptance story: a live batch with a crashing worker
# ----------------------------------------------------------------------
@pytest.mark.fault_injection
def test_batch_dashboard_shows_crash_retry_resume(tmp_path):
    """8 lanes, one SIGKILLed mid-search: running → retrying → resumed → done."""
    from repro.parallel import solve_batch
    from repro.reliability import FaultPlan, RetryPolicy
    from repro.reliability.faults import FAULT_SIGNAL, FaultSpec

    formulas = [pigeonhole_formula(6)] + [pigeonhole_formula(3)] * 7
    out = io.StringIO()
    recorder = FleetRecorder()
    trace = RingBufferSink()
    batch = solve_batch(
        formulas,
        jobs=4,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
        fault_plan=FaultPlan(
            (FaultSpec(FAULT_SIGNAL, worker=0, attempt=0, after_conflicts=300),)
        ),
        checkpoint_dir=tmp_path,
        checkpoint_interval=100,
        monitor=MultiMonitor(recorder, FleetDashboard(out)),
        trace=trace,
    )
    assert batch.num_unsat == 8
    assert recorder.count == 8
    assert recorder.states_of(0) == ["running", "retrying", "resumed", "done"]
    for lane in range(1, 8):
        assert recorder.states_of(lane) == ["running", "done"]
    assert recorder.summary == repr(batch)

    lines = out.getvalue().splitlines()
    assert lines[0] == "fleet: 8 lanes"
    assert "lane 0: retrying (worker crashed (SIGKILL))" in lines
    assert "lane 0: resumed [attempt 1]" in lines
    assert lines[-1].startswith("fleet finished: ")

    events = trace.events
    assert [event["type"] for event in events] == ["worker_fault", "worker_retry"]
    for event in events:
        assert validate_event(event) is None
    assert events[0]["will_retry"] is True
    assert events[1]["resumed_from_conflicts"] >= 100


# ----------------------------------------------------------------------
# OpsTop: the `repro-sat top` service panel
# ----------------------------------------------------------------------
STATS_SNAPSHOT = {
    "uptime_seconds": 12.0,
    "requests": 40,
    "draining": False,
    "replies": {"result": 30, "busy": 5},
    "pool": {"size": 4, "active": 2, "queued": 3, "retries": 1},
    "admission": {"in_flight": 5},
    "spans": {
        "open": 5,
        "completed": 35,
        "slowest_open": [
            {"request_id": "req-aa-000007", "op": "solve", "client": "c",
             "age_seconds": 2.5, "open_spans": ["solve-attempt-1"]},
        ],
    },
    "latency": {
        "solve": {"count": 30, "p50": 0.1, "p90": 0.4, "p99": 0.9},
        "request": {"count": 35, "p50": 0.12, "p90": 0.5, "p99": 1.1},
    },
    "slo": {"objective_seconds": 1.0, "requests": 35,
            "within_objective": 33, "burn_ratio": 0.057143},
}


def test_ops_top_non_tty_prints_one_line_per_update():
    from repro.observability import OpsTop

    out = io.StringIO()
    top = OpsTop(out)
    top.update(STATS_SNAPSHOT)
    second = dict(STATS_SNAPSHOT, requests=44)
    top.update(second)
    top.close()
    lines = out.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("top: 40 requests, 0.0 rps")
    assert "active 2/4" in lines[0]
    assert "queued 3" in lines[0]
    assert "p50 120.0ms" in lines[0]
    assert lines[1].startswith("top: 44 requests, ")


def test_ops_top_tty_panel_shows_percentiles_and_slowest_open():
    from repro.observability import OpsTop

    out = _FakeTty()
    top = OpsTop(out)
    top.update(STATS_SNAPSHOT)
    top.close()
    panel = out.getvalue()
    assert "solver service  up 12s" in panel
    assert "40 requests" in panel
    assert "pool 2/4 active, 3 queued, 1 retries" in panel
    assert "replies: busy=5, result=30" in panel
    assert "slo: 33/35 within 1.0s" in panel
    assert "solve" in panel and "p99=   900.0ms" in panel
    assert "req-aa-000007" in panel and "solve-attempt-1" in panel


def test_ops_top_handles_minimal_stats():
    from repro.observability import OpsTop

    out = io.StringIO()
    top = OpsTop(out)
    top.update({"requests": 0})  # an old server with no ops sections
    top.close()
    line = out.getvalue().splitlines()[0]
    assert line == "top: 0 requests, 0.0 rps, in-flight 0, active 0/0, queued 0, p50 -"
