"""Smoke coverage for the BCP perf harness (``repro.bench`` + the CLI verb).

Marked ``perf_smoke``: fast checks that the harness runs, agrees across
engines, and produces a well-formed ``BENCH_*.json`` report — kept in
tier-1 (``make perf-smoke`` runs just these).  The real timed suite is
``make bench-bcp`` / ``repro-sat bench``, which is too slow for tier-1.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main
from repro.generators import pigeonhole_formula

pytestmark = pytest.mark.perf_smoke

#: Tiny pinned instance: fast enough for tier-1, binary-heavy enough to
#: exercise the split engine's implication arrays.
_TINY = bench.BenchInstance("hole4", "pigeonhole", lambda: pigeonhole_formula(4))


def test_suite_is_pinned():
    names = [instance.name for instance in bench.bench_suite("quick")]
    assert names == ["hole5", "hole6", "queens8", "parity16_sat", "ksat60"]
    assert len(bench.bench_suite("full")) > len(bench.bench_suite("default"))
    with pytest.raises(ValueError, match="unknown bench scale"):
        bench.bench_suite("nope")


def test_run_instance_times_all_engines_and_agrees():
    row = bench.run_instance(_TINY, repeats=1)
    assert row["name"] == "hole4"
    assert row["status"] == "UNSAT"
    assert row["conflicts"] > 0 and row["propagations"] > 0
    for mode in bench.MODES:
        rates = row[mode]
        assert rates["wall_seconds"] > 0
        assert rates["propagations_per_second"] > 0
    assert row["speedup"] > 0
    assert row["arena_speedup"] > 0


def test_report_round_trips_and_formats(tmp_path):
    row = bench.run_instance(_TINY, repeats=1)
    report = {
        "schema": bench.SCHEMA,
        "scale": "smoke",
        "config": "berkmin",
        "repeats": 1,
        "generated_at": "1970-01-01T00:00:00+0000",
        "instances": [row],
        "aggregate": {
            "split_wall_seconds": row["split"]["wall_seconds"],
            "general_wall_seconds": row["general"]["wall_seconds"],
            "arena_wall_seconds": row["arena"]["wall_seconds"],
            "split_propagations_per_second": row["split"]["propagations_per_second"],
            "general_propagations_per_second": row["general"]["propagations_per_second"],
            "arena_propagations_per_second": row["arena"]["propagations_per_second"],
            "propagations_per_second_speedup": row["speedup"],
            "geometric_mean_speedup": row["speedup"],
            "arena_vs_split_speedup": row["arena_speedup"],
            "arena_geometric_mean_speedup": row["arena_speedup"],
            "arena_speedup_target": bench.ARENA_SPEEDUP_TARGET,
            "arena_meets_target": row["arena_speedup"] >= bench.ARENA_SPEEDUP_TARGET,
        },
    }
    path = tmp_path / "BENCH_smoke.json"
    bench.write_report(report, str(path))
    assert json.loads(path.read_text())["schema"] == bench.SCHEMA
    table = bench.format_table(report)
    assert "hole4" in table and "arena x" in table
    assert "arena vs split" in table


def test_config_agreement_stage_on_one_config():
    summary = bench.check_config_agreement(["berkmin"])
    assert summary["configs_checked"] == ["berkmin"]
    assert summary["pairs_checked"] == 2  # one config x two pinned instances
    assert summary["identical_counts"] and summary["statuses_match"]


def test_cli_bench_profile(capsys):
    assert main(["bench", "--profile", "--holes", "3"]) == 0
    out = capsys.readouterr().out
    assert "cProfile: pigeonhole(3)" in out
    assert "cumulative" in out


def test_session_suite_is_pinned():
    quick = bench.session_bench_suite("quick")
    assert [case.name for case in quick] == ["counter4_t9_en", "counter4_t13"]
    with pytest.raises(ValueError, match="unknown bench scale"):
        bench.session_bench_suite("huge")


def test_session_case_agrees_and_serves_from_cache():
    row = bench.run_session_case(
        bench.SessionBenchCase("counter3_t5_en", 3, 5, 6), rounds=2
    )
    assert row["statuses"] == ["UNSAT"] * 5 + ["SAT"] * 2
    assert row["session"]["served_by_search"] == 7
    assert row["session"]["served_by_cache"] == 7
    assert row["oneshot"]["wall_seconds"] > 0
    assert row["speedup"] > 0


def test_cli_bench_session_writes_report(tmp_path, capsys):
    path = tmp_path / "BENCH_smoke6.json"
    code = main(["bench", "--session", "--scale", "quick", "--out", str(path)])
    out = capsys.readouterr().out
    report = json.loads(path.read_text())
    assert report["schema"] == bench.SESSION_SCHEMA
    assert report["agreement"]["statuses_match_ground_truth"] is True
    assert "session bench" in out and "aggregate:" in out
    # Exit code reflects the >= 2x acceptance gate the report records.
    assert code == (0 if report["aggregate"]["meets_target"] else 1)
