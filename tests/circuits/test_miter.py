"""Miter construction and equivalence checking."""

import pytest

from repro.circuits.miter import build_miter, check_equivalence, miter_formula
from repro.circuits.netlist import Circuit, CircuitError
from repro.solver.solver import Solver


def _not_chain(name, length):
    circuit = Circuit(name)
    circuit.add_input("a")
    previous = "a"
    for index in range(length):
        previous = circuit.add_gate("NOT", f"n{index}", previous)
    circuit.set_outputs([previous])
    return circuit


def test_equivalent_circuits_give_unsat_miter():
    left = _not_chain("two", 2)
    right = _not_chain("four", 4)
    right.outputs = [right.outputs[0]]
    # Output names differ, which the miter pairs positionally.
    formula = miter_formula(left, right)
    assert Solver(formula).solve().is_unsat


def test_different_circuits_give_sat_miter():
    left = _not_chain("even", 2)
    right = _not_chain("odd", 3)
    formula = miter_formula(left, right)
    result = Solver(formula).solve()
    assert result.is_sat


def test_check_equivalence_counterexample_is_real():
    left = _not_chain("even", 2)
    right = _not_chain("odd", 3)
    equivalent, counterexample = check_equivalence(left, right)
    assert not equivalent
    assert counterexample is not None
    assert left.output_values(counterexample) != {
        out: value
        for out, value in zip(
            left.outputs, right.output_values(counterexample).values()
        )
    }


def test_check_equivalence_true_case():
    equivalent, counterexample = check_equivalence(_not_chain("a", 2), _not_chain("b", 4))
    assert equivalent
    assert counterexample is None


def test_miter_requires_matching_inputs():
    left = _not_chain("l", 1)
    right = Circuit("r")
    right.add_input("b")
    right.add_gate("NOT", "y", "b")
    right.set_outputs(["y"])
    with pytest.raises(CircuitError):
        build_miter(left, right)


def test_miter_requires_matching_output_counts():
    left = _not_chain("l", 2)
    right = _not_chain("r", 2)
    right.add_gate("NOT", "extra", "a")
    right.set_outputs(right.outputs + ["extra"])
    with pytest.raises(CircuitError):
        build_miter(left, right)


def test_multi_output_miter():
    def two_outputs(swap):
        circuit = Circuit()
        circuit.add_inputs(["a", "b"])
        circuit.add_gate("AND", "x", "a", "b")
        circuit.add_gate("OR", "y", "a", "b")
        circuit.set_outputs(["y", "x"] if swap else ["x", "y"])
        return circuit

    same = miter_formula(two_outputs(False), two_outputs(False))
    assert Solver(same).solve().is_unsat
    swapped = miter_formula(two_outputs(False), two_outputs(True))
    assert Solver(swapped).solve().is_sat


def test_miter_structure():
    left = _not_chain("l", 2)
    right = _not_chain("r", 2)
    miter = build_miter(left, right, "m")
    assert miter.name == "m"
    assert miter.outputs == ["miter_out"]
    assert miter.inputs == ["a"]
