"""Adder circuits: functional correctness, equivalence, Beijing instances."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    adder_equivalence_miter,
    carry_select_adder,
    constrained_adder_formula,
    ripple_carry_adder,
)
from repro.solver.solver import Solver


def _add_via_circuit(circuit, width, a, b, carry_in):
    vector = {}
    for index in range(width):
        vector[f"a{index}"] = bool((a >> index) & 1)
        vector[f"b{index}"] = bool((b >> index) & 1)
    vector["cin"] = carry_in
    outputs = circuit.output_values(vector)
    total = sum(1 << index for index in range(width) if outputs[f"s{index}"])
    if outputs["cout"]:
        total += 1 << width
    return total


@pytest.mark.parametrize("width", [1, 2, 3])
def test_ripple_adder_exhaustive(width):
    circuit = ripple_carry_adder(width)
    for a, b in itertools.product(range(2**width), repeat=2):
        for carry in (False, True):
            assert _add_via_circuit(circuit, width, a, b, carry) == a + b + carry


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10), st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1), st.booleans(), st.integers(1, 4))
def test_carry_select_matches_ripple(width, a, b, carry, block):
    a %= 2**width
    b %= 2**width
    ripple = ripple_carry_adder(width)
    select = carry_select_adder(width, block)
    assert _add_via_circuit(ripple, width, a, b, carry) == a + b + carry
    assert _add_via_circuit(select, width, a, b, carry) == a + b + carry


@pytest.mark.parametrize("width,block", [(4, 1), (4, 2), (6, 3)])
def test_adder_equivalence_miter_unsat(width, block):
    formula = adder_equivalence_miter(width, block)
    assert Solver(formula).solve().is_unsat


def test_constrained_adder_models_decode_to_sums():
    width, target = 6, 77
    formula = constrained_adder_formula(width, target)
    result = Solver(formula).solve()
    assert result.is_sat
    # Recover the addends from the model via the encoding's input names.
    from repro.circuits.tseitin import encode_circuit

    encoding = encode_circuit(ripple_carry_adder(width))
    addend_a = sum(
        1 << index
        for index in range(width)
        if result.model[encoding.variable(f"a{index}")]
    )
    addend_b = sum(
        1 << index
        for index in range(width)
        if result.model[encoding.variable(f"b{index}")]
    )
    assert addend_a + addend_b == target


def test_constrained_adder_rejects_impossible_targets():
    with pytest.raises(ValueError):
        constrained_adder_formula(4, 31)  # max is 2*(2**4-1) = 30
    with pytest.raises(ValueError):
        constrained_adder_formula(4, -1)


def test_constrained_adder_extreme_targets_are_sat():
    for target in (0, 2 * (2**5 - 1)):
        result = Solver(constrained_adder_formula(5, target)).solve()
        assert result.is_sat


def test_adder_rejects_zero_width():
    with pytest.raises(Exception):
        ripple_carry_adder(0)
