"""Netlist construction, validation, and simulation."""

import itertools

import pytest

from repro.circuits.netlist import Circuit, CircuitError, Gate


def _xor_circuit():
    circuit = Circuit("xor")
    circuit.add_inputs(["a", "b"])
    circuit.add_gate("XOR", "y", "a", "b")
    circuit.set_outputs(["y"])
    return circuit


def test_gate_truth_tables():
    cases = {
        "AND": lambda a, b: a and b,
        "OR": lambda a, b: a or b,
        "NAND": lambda a, b: not (a and b),
        "NOR": lambda a, b: not (a or b),
        "XOR": lambda a, b: a != b,
        "XNOR": lambda a, b: a == b,
    }
    for operation, reference in cases.items():
        gate = Gate(operation, "y", ("a", "b"))
        for a, b in itertools.product((False, True), repeat=2):
            assert gate.evaluate({"a": a, "b": b}) == reference(a, b), operation


def test_not_buf_mux():
    assert Gate("NOT", "y", ("a",)).evaluate({"a": True}) is False
    assert Gate("BUF", "y", ("a",)).evaluate({"a": True}) is True
    mux = Gate("MUX", "y", ("s", "a", "b"))
    assert mux.evaluate({"s": False, "a": True, "b": False}) is True
    assert mux.evaluate({"s": True, "a": True, "b": False}) is False


def test_multi_input_and():
    gate = Gate("AND", "y", ("a", "b", "c"))
    assert gate.evaluate({"a": True, "b": True, "c": True}) is True
    assert gate.evaluate({"a": True, "b": False, "c": True}) is False


def test_bad_operation_rejected():
    with pytest.raises(CircuitError):
        Gate("NANDY", "y", ("a",))


def test_bad_arity_rejected():
    with pytest.raises(CircuitError):
        Gate("NOT", "y", ("a", "b"))
    with pytest.raises(CircuitError):
        Gate("XOR", "y", ("a", "b", "c"))
    with pytest.raises(CircuitError):
        Gate("MUX", "y", ("a", "b"))


def test_simulate_xor():
    circuit = _xor_circuit()
    assert circuit.output_values({"a": True, "b": False}) == {"y": True}
    assert circuit.output_values({"a": True, "b": True}) == {"y": False}


def test_missing_input_value_rejected():
    with pytest.raises(CircuitError):
        _xor_circuit().simulate({"a": True})


def test_duplicate_driver_rejected():
    circuit = _xor_circuit()
    with pytest.raises(CircuitError):
        circuit.add_gate("AND", "y", "a", "b")
    with pytest.raises(CircuitError):
        circuit.add_input("y")
    with pytest.raises(CircuitError):
        circuit.add_gate("AND", "a", "a", "b")


def test_undriven_net_detected():
    circuit = Circuit()
    circuit.add_input("a")
    circuit.add_gate("AND", "y", "a", "ghost")
    with pytest.raises(CircuitError):
        circuit.validate()


def test_cycle_detected():
    circuit = Circuit()
    circuit.add_input("a")
    circuit.add_gate("AND", "x", "a", "y")
    circuit.add_gate("OR", "y", "a", "x")
    with pytest.raises(CircuitError, match="cycle"):
        circuit.topological_order()


def test_topological_order_respects_dependencies():
    circuit = Circuit()
    circuit.add_inputs(["a", "b"])
    circuit.add_gate("AND", "t1", "a", "b")
    circuit.add_gate("OR", "t2", "t1", "a")
    circuit.add_gate("XOR", "t3", "t2", "t1")
    positions = {gate.output: i for i, gate in enumerate(circuit.topological_order())}
    assert positions["t1"] < positions["t2"] < positions["t3"]


def test_output_must_be_driven():
    circuit = Circuit()
    circuit.add_input("a")
    with pytest.raises(CircuitError):
        circuit.set_outputs(["nope"])


def test_input_can_be_output():
    circuit = Circuit()
    circuit.add_input("a")
    circuit.set_outputs(["a"])
    assert circuit.output_values({"a": True}) == {"a": True}


def test_nets_and_repr():
    circuit = _xor_circuit()
    assert circuit.nets() == ["a", "b", "y"]
    assert circuit.num_gates == 1
    assert "inputs=2" in repr(circuit)
