"""Pipelined-ALU datapaths: variant agreement and miter statuses."""

import random

import pytest

from repro.circuits.netlist import CircuitError
from repro.circuits.pipeline import pipelined_alu, pipeline_equivalence_miter
from repro.solver.solver import Solver


def _random_vector(circuit, rng):
    return {net: rng.random() < 0.5 for net in circuit.inputs}


@pytest.mark.parametrize("width,stages", [(2, 1), (3, 2), (4, 2), (4, 3)])
def test_variants_agree_on_random_vectors(width, stages):
    reference = pipelined_alu(width, stages, "reference")
    optimized = pipelined_alu(width, stages, "optimized")
    assert reference.inputs == optimized.inputs
    assert reference.outputs == optimized.outputs
    rng = random.Random(width * 100 + stages)
    for _ in range(50):
        vector = _random_vector(reference, rng)
        assert reference.output_values(vector) == optimized.output_values(vector)


def test_stage_opcodes_do_different_things():
    """pass / xor / and-not / add must be distinguishable on some input."""
    width = 3
    circuit = pipelined_alu(width, 1, "reference")
    rng = random.Random(1)
    behaviours = set()
    for c0 in (False, True):
        for c1 in (False, True):
            outputs = []
            rng_local = random.Random(7)
            for _ in range(12):
                vector = {
                    f"d{i}": rng_local.random() < 0.5 for i in range(width)
                }
                vector["c0_0"] = c0
                vector["c0_1"] = c1
                outputs.append(tuple(circuit.output_values(vector).values()))
            behaviours.add(tuple(outputs))
    assert len(behaviours) == 4


def test_equivalence_miter_is_unsat():
    formula, satisfiable = pipeline_equivalence_miter(3, 2)
    assert not satisfiable
    assert Solver(formula).solve().is_unsat


def test_fault_miter_is_sat():
    formula, satisfiable = pipeline_equivalence_miter(3, 2, fault_seed=5)
    assert satisfiable
    assert Solver(formula).solve().is_sat


def test_inputs_are_word_plus_controls():
    circuit = pipelined_alu(4, 3, "reference")
    assert len(circuit.inputs) == 4 + 2 * 3


def test_parameter_validation():
    with pytest.raises(CircuitError):
        pipelined_alu(1, 1)
    with pytest.raises(CircuitError):
        pipelined_alu(4, 0)
    with pytest.raises(CircuitError):
        pipelined_alu(4, 1, "turbo")
