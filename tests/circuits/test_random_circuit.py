"""Random circuits, equivalence-preserving rewrites, and fault injection."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import CircuitError
from repro.circuits.random_circuit import inject_fault, random_circuit, rewrite_circuit


def test_random_circuit_is_valid_and_deterministic():
    first = random_circuit(6, 40, seed=3)
    second = random_circuit(6, 40, seed=3)
    first.validate()
    assert [g.output for g in first.topological_order()] == [
        g.output for g in second.topological_order()
    ]
    assert first.num_gates == 40
    assert len(first.inputs) == 6
    assert first.outputs


def test_random_circuit_rejects_tiny_parameters():
    with pytest.raises(CircuitError):
        random_circuit(1, 5, seed=0)
    with pytest.raises(CircuitError):
        random_circuit(3, 0, seed=0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 1.0))
def test_rewrite_preserves_function(seed, probability):
    """Exhaustive check over all input vectors of a small circuit."""
    circuit = random_circuit(5, 25, seed=seed)
    rewritten = rewrite_circuit(circuit, seed=seed + 1, probability=probability)
    rewritten.validate()
    for values in itertools.product((False, True), repeat=5):
        vector = dict(zip(circuit.inputs, values))
        assert circuit.output_values(vector) == rewritten.output_values(vector)


def test_rewrite_changes_structure():
    circuit = random_circuit(6, 50, seed=9)
    rewritten = rewrite_circuit(circuit, seed=10, probability=1.0)
    original_ops = sorted(g.operation for g in circuit.gates.values())
    rewritten_ops = sorted(g.operation for g in rewritten.gates.values())
    assert original_ops != rewritten_ops or circuit.num_gates != rewritten.num_gates


def test_rewrite_keeps_interface():
    circuit = random_circuit(6, 30, seed=2)
    rewritten = rewrite_circuit(circuit, seed=3)
    assert rewritten.inputs == circuit.inputs
    assert rewritten.outputs == circuit.outputs


def test_inject_fault_returns_real_witness():
    circuit = random_circuit(7, 60, seed=4)
    mutant, witness = inject_fault(circuit, seed=5)
    mutant.validate()
    assert circuit.output_values(witness) != mutant.output_values(witness)
    assert mutant.inputs == circuit.inputs
    assert mutant.outputs == circuit.outputs


def test_inject_fault_is_single_gate_change():
    circuit = random_circuit(6, 40, seed=8)
    mutant, _ = inject_fault(circuit, seed=9)
    differences = [
        net
        for net in circuit.gates
        if circuit.gates[net].operation != mutant.gates[net].operation
        or circuit.gates[net].inputs != mutant.gates[net].inputs
    ]
    assert len(differences) == 1


def test_fault_miters_are_sat_and_rewrite_miters_unsat():
    from repro.circuits.miter import miter_formula
    from repro.solver.solver import Solver

    rng = random.Random(0)
    for _ in range(3):
        seed = rng.randint(0, 10_000)
        circuit = random_circuit(6, 40, seed=seed)
        rewritten = rewrite_circuit(circuit, seed=seed + 1)
        assert Solver(miter_formula(circuit, rewritten)).solve().is_unsat
        mutant, _ = inject_fault(circuit, seed=seed + 2)
        assert Solver(miter_formula(circuit, mutant)).solve().is_sat
