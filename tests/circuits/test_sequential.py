"""Sequential circuits and bounded model checking."""

import pytest

from repro.circuits.netlist import CircuitError
from repro.circuits.sequential import (
    bmc_formula,
    counter_circuit,
    lfsr_circuit,
    unroll,
)
from repro.solver.solver import Solver


def test_counter_simulation_counts():
    counter = counter_circuit(3, target=5)
    trace = counter.simulate(8)
    values = [
        sum(1 << i for i in range(3) if snapshot[f"q{i}"]) for snapshot in trace
    ]
    assert values == [0, 1, 2, 3, 4, 5, 6, 7]
    assert [snapshot["bad"] for snapshot in trace] == [False] * 5 + [True, False, False]


def test_counter_wraps():
    counter = counter_circuit(2, target=0)
    trace = counter.simulate(6)
    values = [
        sum(1 << i for i in range(2) if snapshot[f"q{i}"]) for snapshot in trace
    ]
    assert values == [0, 1, 2, 3, 0, 1]


def test_depth_to_bad():
    assert counter_circuit(3, target=5).depth_to_bad() == 5
    assert counter_circuit(3, target=0).depth_to_bad() == 0


def test_depth_to_bad_requires_input_free():
    with pytest.raises(CircuitError):
        counter_circuit(3, target=5, with_enable=True).depth_to_bad()


@pytest.mark.parametrize("target", [0, 3, 6])
def test_bmc_sat_exactly_at_depth(target):
    counter = counter_circuit(3, target=target)
    if target > 0:
        below = Solver(bmc_formula(counter, target - 1)).solve()
        assert below.is_unsat
    at = Solver(bmc_formula(counter, target)).solve()
    assert at.is_sat
    above = Solver(bmc_formula(counter, target + 2)).solve()
    assert above.is_sat


def test_bmc_counterexample_trace_decodes():
    counter = counter_circuit(3, target=4)
    encoding = unroll(counter, 6)
    result = Solver(encoding.formula).solve()
    assert result.is_sat
    trace = encoding.decode_trace(result.model, counter)
    assert any(snapshot["bad"] for snapshot in trace)
    # Frame 0 is the reset state.
    assert all(not trace[0][f"q{i}"] for i in range(3))
    # The trace must follow the real transition relation.
    simulated = counter.simulate(7)
    for frame, snapshot in enumerate(trace):
        for register in ("q0", "q1", "q2"):
            assert snapshot[register] == simulated[frame][register]


def test_enabled_counter_needs_enables():
    counter = counter_circuit(2, target=3, with_enable=True)
    # Bad requires three increments: unreachable within 2 cycles.
    assert Solver(bmc_formula(counter, 2)).solve().is_unsat
    result = Solver(bmc_formula(counter, 3)).solve()
    assert result.is_sat


def test_enabled_counter_simulation_respects_inputs():
    counter = counter_circuit(2, target=3, with_enable=True)
    trace = counter.simulate(4, input_trace=[{"en": True}, {"en": False}, {"en": True}, {"en": True}])
    values = [
        sum(1 << i for i in range(2) if snapshot[f"q{i}"]) for snapshot in trace
    ]
    assert values == [0, 1, 1, 2]


def test_lfsr_ground_truth_matches_bmc():
    lfsr = lfsr_circuit(taps=[3, 2], width=4, target=0b1000)
    depth = lfsr.depth_to_bad(max_steps=40)
    assert depth is not None and depth > 0
    assert Solver(bmc_formula(lfsr, depth - 1)).solve().is_unsat
    assert Solver(bmc_formula(lfsr, depth)).solve().is_sat


def test_lfsr_unreachable_state():
    # The all-zero state is never reached by a nonzero-seeded LFSR.
    lfsr = lfsr_circuit(taps=[3, 2], width=4, target=0)
    assert lfsr.depth_to_bad(max_steps=100) is None
    assert Solver(bmc_formula(lfsr, 20)).solve().is_unsat


def test_validation():
    with pytest.raises(ValueError):
        counter_circuit(2, target=9)
    with pytest.raises(CircuitError):
        counter_circuit(0, target=0)
    with pytest.raises(ValueError):
        unroll(counter_circuit(2, 1), -1)
    with pytest.raises(ValueError):
        lfsr_circuit(taps=[9], width=4, target=1)
