"""Tseitin encoding: each gate's clauses match its truth table, and whole
circuits agree with simulation on random vectors."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_model
from repro.circuits.netlist import Circuit
from repro.circuits.random_circuit import random_circuit
from repro.circuits.tseitin import encode_circuit
from repro.solver.solver import Solver

TWO_INPUT_OPERATIONS = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]


@pytest.mark.parametrize("operation", TWO_INPUT_OPERATIONS)
def test_two_input_gate_encoding_matches_truth_table(operation):
    circuit = Circuit()
    circuit.add_inputs(["a", "b"])
    circuit.add_gate(operation, "y", "a", "b")
    circuit.set_outputs(["y"])
    encoding = encode_circuit(circuit)
    for a, b in itertools.product((False, True), repeat=2):
        formula = encoding.formula.copy()
        formula.add_clause([encoding.literal("a", a)])
        formula.add_clause([encoding.literal("b", b)])
        model = brute_force_model(formula)
        assert model is not None
        expected = circuit.output_values({"a": a, "b": b})["y"]
        assert model[encoding.variable("y")] == expected


@pytest.mark.parametrize("operation", ["NOT", "BUF"])
def test_unary_gate_encoding(operation):
    circuit = Circuit()
    circuit.add_input("a")
    circuit.add_gate(operation, "y", "a")
    circuit.set_outputs(["y"])
    encoding = encode_circuit(circuit)
    for a in (False, True):
        formula = encoding.formula.copy()
        formula.add_clause([encoding.literal("a", a)])
        model = brute_force_model(formula)
        expected = a if operation == "BUF" else not a
        assert model[encoding.variable("y")] == expected


def test_mux_encoding():
    circuit = Circuit()
    circuit.add_inputs(["s", "a", "b"])
    circuit.add_gate("MUX", "y", "s", "a", "b")
    circuit.set_outputs(["y"])
    encoding = encode_circuit(circuit)
    for s, a, b in itertools.product((False, True), repeat=3):
        formula = encoding.formula.copy()
        for net, value in (("s", s), ("a", a), ("b", b)):
            formula.add_clause([encoding.literal(net, value)])
        model = brute_force_model(formula)
        assert model[encoding.variable("y")] == (b if s else a)


def test_wide_and_encoding():
    circuit = Circuit()
    circuit.add_inputs(["a", "b", "c", "d"])
    circuit.add_gate("AND", "y", "a", "b", "c", "d")
    circuit.set_outputs(["y"])
    encoding = encode_circuit(circuit)
    for values in itertools.product((False, True), repeat=4):
        formula = encoding.formula.copy()
        for net, value in zip("abcd", values):
            formula.add_clause([encoding.literal(net, value)])
        model = brute_force_model(formula)
        assert model[encoding.variable("y")] == all(values)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 6), st.integers(5, 40))
def test_random_circuit_encoding_agrees_with_simulation(seed, inputs, gates):
    """Constrain the encoded inputs to a random vector; the SAT model of the
    whole CNF must equal the simulator's net values."""
    circuit = random_circuit(inputs, gates, seed=seed)
    encoding = encode_circuit(circuit)
    rng = random.Random(seed + 1)
    vector = {net: rng.random() < 0.5 for net in circuit.inputs}
    formula = encoding.formula.copy()
    for net, value in vector.items():
        formula.add_clause([encoding.literal(net, value)])
    result = Solver(formula).solve()
    assert result.is_sat
    simulated = circuit.simulate(vector)
    decoded = encoding.decode_nets(result.model)
    assert decoded == simulated


def test_prefix_namespacing_allows_shared_formula():
    left = Circuit("l")
    left.add_input("a")
    left.add_gate("NOT", "y", "a")
    left.set_outputs(["y"])
    encoding_left = encode_circuit(left, prefix="L.")
    encoding_right = encode_circuit(left, encoding_left.formula, prefix="R.")
    assert encoding_left.formula is encoding_right.formula
    assert encoding_left.variable("L.y") != encoding_right.variable("R.y")


def test_assume_input_adds_unit():
    circuit = Circuit()
    circuit.add_input("a")
    circuit.add_gate("BUF", "y", "a")
    circuit.set_outputs(["y"])
    encoding = encode_circuit(circuit)
    encoding.assume_input("a", False)
    assert [-encoding.variable("a")] in encoding.formula.clauses
