"""SAT-based ATPG."""

import pytest

from repro.circuits.atpg import (
    StuckAtFault,
    enumerate_faults,
    generate_test,
    inject_stuck_at,
    pattern_detects,
    run_atpg,
)
from repro.circuits.netlist import Circuit
from repro.circuits.random_circuit import random_circuit


def _and_or_circuit():
    circuit = Circuit("demo")
    circuit.add_inputs(["a", "b", "c"])
    circuit.add_gate("AND", "t", "a", "b")
    circuit.add_gate("OR", "y", "t", "c")
    circuit.set_outputs(["y"])
    return circuit


def test_enumerate_faults_covers_both_polarities():
    faults = enumerate_faults(_and_or_circuit())
    assert len(faults) == 4  # two gates x two polarities
    assert StuckAtFault("t", True) in faults


def test_inject_stuck_at_forces_constant():
    circuit = _and_or_circuit()
    faulty = inject_stuck_at(circuit, StuckAtFault("t", True))
    # With t stuck at 1, the output is always 1.
    for a in (False, True):
        for b in (False, True):
            assert faulty.output_values({"a": a, "b": b, "c": False})["y"] is True


def test_generate_test_finds_detecting_pattern():
    circuit = _and_or_circuit()
    fault = StuckAtFault("t", True)
    result = generate_test(circuit, fault)
    assert result.testable
    assert pattern_detects(circuit, fault, result.pattern)
    # Detecting t stuck-at-1 requires c=0 and not (a and b).
    assert result.pattern["c"] is False
    assert not (result.pattern["a"] and result.pattern["b"])


def test_untestable_fault_in_redundant_logic():
    # y = OR(a, AND(a, b)) == a: the AND gate is redundant, so its
    # stuck-at-0 fault can never be observed.
    circuit = Circuit("redundant")
    circuit.add_inputs(["a", "b"])
    circuit.add_gate("AND", "t", "a", "b")
    circuit.add_gate("OR", "y", "a", "t")
    circuit.set_outputs(["y"])
    result = generate_test(circuit, StuckAtFault("t", False))
    assert not result.testable
    assert result.pattern is None


def test_full_atpg_report_on_random_circuit():
    circuit = random_circuit(5, 20, seed=11)
    report = run_atpg(circuit)
    assert report.total_faults == 40
    assert 0.0 <= report.coverage <= 1.0
    for result in report.results:
        if result.testable:
            assert pattern_detects(circuit, result.fault, result.pattern)
    # Untestable faults really are untestable (exhaustive simulation).
    import itertools

    for fault in report.untestable_faults:
        faulty = inject_stuck_at(circuit, fault)
        for values in itertools.product((False, True), repeat=5):
            vector = dict(zip(circuit.inputs, values))
            assert circuit.output_values(vector) == faulty.output_values(vector)


def test_test_set_deduplicates():
    circuit = _and_or_circuit()
    report = run_atpg(circuit)
    patterns = report.test_set()
    assert len(patterns) <= report.testable_faults
    assert len({tuple(sorted(p.items())) for p in patterns}) == len(patterns)


def test_empty_report_coverage():
    from repro.circuits.atpg import AtpgReport

    assert AtpgReport("x").coverage == 1.0
