"""Table 3 bench — the skin effect (Section 6).

Times the skin-effect profiling run and asserts the phenomenon itself:
f(r) decays with distance from the top of the learned-clause stack, with
a small f(0).  Full table: ``python -m repro.experiments.table3``.
"""

import pytest

from repro.experiments.table3 import monotone_share
from repro.experiments.suites import Instance, _hanoi, _pipe
from repro.solver.config import berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver

INSTANCES = [
    Instance("hanoi4", lambda: _hanoi(4, None), SolveStatus.SAT, 60_000),
    Instance("pipe_w5s3", lambda: _pipe(5, 3), SolveStatus.UNSAT, 60_000),
]


@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table3_skin_effect(benchmark, instance):
    def profile():
        solver = Solver(instance.formula(), config=berkmin_config())
        solver.solve(max_conflicts=instance.max_conflicts)
        return solver.stats.skin_effect

    skin = benchmark.pedantic(profile, rounds=1, iterations=1)
    total = sum(skin.values())
    assert total > 0
    # The skin effect: the profile decays over small distances ...
    assert monotone_share(skin, prefix=8) >= 0.6
    # ... and f(0) is small relative to f(1): the topmost clause is
    # satisfied by BCP the moment it is learned (Section 6).
    if skin.get(1, 0) > 50:
        assert skin.get(0, 0) < skin[1]
    benchmark.extra_info["f(0..5)"] = [skin.get(r, 0) for r in range(6)]
