"""Table 5 bench — clause-database management (Section 8).

BerkMin's age/activity/length deletion against GRASP-style
``limited_keeping`` on the classes where long-but-active clauses matter
(Hanoi and the deep pipelines).  Full table:
``python -m repro.experiments.table5``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _hanoi, _hole, _pipe
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hanoi4_T14", lambda: _hanoi(4, 14), SolveStatus.UNSAT, 60_000),
    Instance("hole7", lambda: _hole(7), SolveStatus.UNSAT, 60_000),
    Instance("pipe_w5s3", lambda: _pipe(5, 3), SolveStatus.UNSAT, 60_000),
]
CONFIGS = ["berkmin", "limited_keeping"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table5_db_management(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
