"""Table 1 bench — sensitivity of decision-making (Section 4).

Times BerkMin against the ``less_sensitivity`` ablation (Chaff-style
variable-activity updates) on representatives of the classes where the
paper saw the biggest gaps: Hanoi, Miters and the deep pipelines.
Full table: ``python -m repro.experiments.table1``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _hanoi, _pipe, _rewrite_miter
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hanoi4_T14", lambda: _hanoi(4, 14), SolveStatus.UNSAT, 60_000),
    Instance("miter_18x250", lambda: _rewrite_miter(18, 250, 4), SolveStatus.UNSAT, 60_000),
    Instance("pipe_w5s3", lambda: _pipe(5, 3), SolveStatus.UNSAT, 60_000),
]
CONFIGS = ["berkmin", "less_sensitivity"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table1_sensitivity(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
