"""Table 7 bench — classes on which BerkMin dominates Chaff.

The robustness comparison on the hard classes: Hanoi (where the paper
saw a 36x gap), Miters and the deep pipelines.  Full table:
``python -m repro.experiments.table7``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _adder_sum, _hanoi, _pipe, _rewrite_miter
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hanoi4", lambda: _hanoi(4, None), SolveStatus.SAT, 60_000),
    Instance("miter_20x400", lambda: _rewrite_miter(20, 400, 5), SolveStatus.UNSAT, 60_000),
    Instance("pipe_w6s3", lambda: _pipe(6, 3), SolveStatus.UNSAT, 60_000),
    Instance("2bitadd_12", lambda: _adder_sum(12, 5741), SolveStatus.SAT, 60_000),
]
CONFIGS = ["chaff", "berkmin"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table7_dominates(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
