"""Extension bench — CNF preprocessing ahead of the solver.

Measures subsumption + bounded variable elimination (the post-BerkMin
NiVER/SatELite lineage) as a front-end: preprocessing time plus solve
time on the reduced formula, versus solving the original directly.
Also times the DPLL baseline on the same instance for the
tree-like-resolution contrast the paper's introduction draws.
"""

import pytest

from repro.baselines.dpll import DpllSolver
from repro.cnf.elimination import preprocess
from repro.experiments.suites import Instance, _hanoi, _hole, _pipe
from repro.solver.config import berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver

INSTANCES = [
    Instance("hole6", lambda: _hole(6), SolveStatus.UNSAT, 60_000),
    Instance("pipe_w4s2", lambda: _pipe(4, 2), SolveStatus.UNSAT, 60_000),
    Instance("hanoi3", lambda: _hanoi(3, None), SolveStatus.SAT, 60_000),
]


@pytest.mark.parametrize("use_preprocessing", [False, True], ids=["direct", "preprocessed"])
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_preprocess_then_solve(benchmark, instance, use_preprocessing):
    def run():
        formula = instance.formula()
        if use_preprocessing:
            reduction = preprocess(formula, max_growth=0)
            if reduction.unsat:
                return SolveStatus.UNSAT
            result = Solver(reduction.formula, config=berkmin_config()).solve(
                max_conflicts=instance.max_conflicts
            )
            if result.is_sat:
                full = reduction.extend_model(result.model)
                for variable in range(1, formula.num_variables + 1):
                    full.setdefault(variable, False)
                assert formula.evaluate(full)
            return result.status
        return (
            Solver(formula, config=berkmin_config())
            .solve(max_conflicts=instance.max_conflicts)
            .status
        )

    status = benchmark.pedantic(run, rounds=1, iterations=1)
    assert status is instance.expected


@pytest.mark.parametrize("instance", INSTANCES[:1], ids=lambda i: i.name)
def test_dpll_baseline_contrast(benchmark, instance):
    """Tree-like resolution on the same instance (the paper's framing)."""

    def run():
        return DpllSolver(instance.formula()).solve(
            max_decisions=500_000, max_seconds=60
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dpll_decisions"] = result.decisions
    benchmark.extra_info["finished"] = result.satisfiable is not None
