"""Table 2 bench — mobility of decision-making (Section 5).

BerkMin's top-clause branching versus the ``less_mobility`` ablation
(globally most active variable) on the classes the paper highlights:
the deep pipelines (Fvp-style) and Miters, where less_mobility blew up
or aborted.  Full table: ``python -m repro.experiments.table2``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _adder_sum, _pipe, _rewrite_miter
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("pipe_w4s3", lambda: _pipe(4, 3), SolveStatus.UNSAT, 60_000),
    Instance("miter_18x250", lambda: _rewrite_miter(18, 250, 4), SolveStatus.UNSAT, 60_000),
    Instance("2bitadd_12", lambda: _adder_sum(12, 5741), SolveStatus.SAT, 60_000),
]
CONFIGS = ["berkmin", "less_mobility"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table2_mobility(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
