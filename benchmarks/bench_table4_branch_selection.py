"""Table 4 bench — branch-selection heuristics (Section 7).

All six phase heuristics on the classes where the paper saw dramatic
spreads (Hole blows up under unsat_top/take_1; Hanoi punishes sat_top
and take_0).  Full table: ``python -m repro.experiments.table4``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.paper_data import TABLE4_CONFIGS
from repro.experiments.suites import Instance, _hanoi, _hole
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hole7", lambda: _hole(7), SolveStatus.UNSAT, 60_000),
    Instance("hanoi3", lambda: _hanoi(3, None), SolveStatus.SAT, 60_000),
]


@pytest.mark.parametrize("config_name", TABLE4_CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table4_branch_selection(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
