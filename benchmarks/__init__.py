"""Benchmark harness: one module per table/figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only
"""
