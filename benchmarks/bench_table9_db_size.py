"""Table 9 bench — database-size ratios.

Measures the Table 9 quantities — total conflict clauses generated and
peak clauses in memory, both relative to the initial CNF — and asserts
the paper's shape: BerkMin's database stays much smaller than Chaff's
and its peak memory stays within a few times the initial CNF.
Full table: ``python -m repro.experiments.table9``.
"""

import pytest

from repro.experiments.runner import run_instance
from repro.experiments.suites import Instance, _hanoi, _pipe
from repro.solver.config import berkmin_config, chaff_config
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hanoi4", lambda: _hanoi(4, None), SolveStatus.SAT, 120_000),
    Instance("pipe_w5s3", lambda: _pipe(5, 3), SolveStatus.UNSAT, 120_000),
]


@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table9_db_size(benchmark, instance):
    def run_both():
        return (
            run_instance(instance, chaff_config()),
            run_instance(instance, berkmin_config()),
        )

    chaff_run, berkmin_run = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["chaff_growth"] = round(chaff_run.stats.database_growth_ratio(), 2)
    benchmark.extra_info["berkmin_growth"] = round(
        berkmin_run.stats.database_growth_ratio(), 2
    )
    benchmark.extra_info["chaff_peak"] = round(chaff_run.stats.peak_memory_ratio(), 2)
    benchmark.extra_info["berkmin_peak"] = round(berkmin_run.stats.peak_memory_ratio(), 2)
    # Table 9's shape: BerkMin's peak stays within a few times the initial CNF.
    assert berkmin_run.stats.peak_memory_ratio() < 6.0
