"""Table 8 bench — search-tree sizes (decisions) on hard instances.

The paper's claim: BerkMin wins by building smaller search trees.  The
benchmark records the decision counts in ``extra_info`` so the JSON
output carries the Table 8 comparison.  Full table:
``python -m repro.experiments.table8``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.table8 import hard_instances

INSTANCES = [i for i in hard_instances("default") if i.name != "hanoi5"]
CONFIGS = ["chaff", "berkmin"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table8_decisions(benchmark, instance, config_name):
    outcome = solve_case(benchmark, instance, config_name)
    assert outcome.decisions > 0
