"""Table 10 bench — competition-style robustness.

BerkMin, the Chaff baseline and plain DPLL on reshuffled hard instances
(the SAT-2002 organisers reshuffled everything).  Full table:
``python -m repro.experiments.table10``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.baselines.dpll import DpllSolver
from repro.experiments.suites import Instance, _hole, _shuffled
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("shuf_hole7", lambda: _shuffled("hole7", 13), SolveStatus.UNSAT, 60_000),
    Instance("shuf_pipe_w5s3", lambda: _shuffled("pipe53", 11), SolveStatus.UNSAT, 60_000),
    Instance("shuf_hanoi4", lambda: _shuffled("hanoi4", 12), SolveStatus.SAT, 120_000),
]
CONFIGS = ["berkmin", "chaff"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table10_cdcl(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)


def test_table10_dpll_baseline(benchmark):
    """The pre-CDCL baseline cannot finish the reshuffled hole7 in budget."""
    instance = INSTANCES[0]

    def run():
        return DpllSolver(instance.formula()).solve(max_decisions=50_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dpll_decisions"] = result.decisions
    benchmark.extra_info["dpll_finished"] = result.satisfiable is not None
