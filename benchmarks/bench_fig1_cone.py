"""Fig. 1 bench — cone variables switching from idle to active.

Times the two Fig. 1 measurement runs (control pinned to 0 and to 1) and
asserts the figure's point: the cone's share of conflict activity is
(near) zero while gated off and jumps once the AND's control pin is 1.
Full output: ``python -m repro.experiments.fig1``.
"""

from repro.experiments.fig1 import measure


def test_fig1_cone_activity(benchmark):
    gated, active = benchmark.pedantic(
        lambda: measure(max_conflicts=20_000), rounds=1, iterations=1
    )
    benchmark.extra_info["gated_share"] = round(gated.cone_share, 4)
    benchmark.extra_info["active_share"] = round(active.cone_share, 4)
    assert gated.cone_share <= 0.05
    assert active.cone_share >= 2 * gated.cone_share
    assert active.cone_share > 0.05
