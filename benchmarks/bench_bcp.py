"""BCP bench — split binary-implication engine vs the watched-literal
reference, one pytest-benchmark case per (instance, engine) pair.

``make bench-bcp`` runs the aggregate CLI harness instead
(``repro-sat bench --out BENCH_2.json``, the source of the repo-root
``BENCH_*.json`` trajectory); this module is for drilling into single
instances with pytest-benchmark's statistics:
``pytest benchmarks/bench_bcp.py --benchmark-only``.

Every case records conflict/decision/propagation counts in
``extra_info`` — the engines must produce identical counts (the
differential tests and the CLI harness enforce it; here the numbers are
captured so a timing diff can be read next to its search-trace
fingerprint).
"""

from __future__ import annotations

import pytest

from repro.bench import MODES, bench_suite
from repro.solver.config import config_by_name
from repro.solver.solver import Solver


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("instance", bench_suite("quick"), ids=lambda i: i.name)
def test_bcp_engine(benchmark, instance, mode):
    formula = instance.build()
    config = config_by_name("berkmin", propagation=mode)

    def run():
        return Solver(formula, config=config).solve()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = result.stats
    benchmark.extra_info["instance"] = instance.name
    benchmark.extra_info["engine"] = mode
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["conflicts"] = stats.conflicts
    benchmark.extra_info["decisions"] = stats.decisions
    benchmark.extra_info["propagations"] = stats.propagations
