"""Portfolio bench — sequential vs parallel wall-clock on the quick suite.

Records the perf baseline the acceptance criteria ask for: the full
``paper_suite("quick")`` solved sequentially under ``berkmin``, against
the same instances raced through ``PortfolioSolver(jobs=4)``.  Both
paths verify every definite answer against the suite's ground truth, so
a speedup bought with wrong answers would fail loudly.  On a single-core
machine the portfolio carries process overhead instead of a speedup;
``benchmark.extra_info`` captures the core count so future comparisons
read the numbers in context.

Run: ``make bench-portfolio`` (or ``pytest benchmarks/bench_portfolio.py
--benchmark-only``).
"""

from __future__ import annotations

import os

from repro.experiments.suites import paper_suite
from repro.parallel.portfolio import PortfolioSolver, default_portfolio
from repro.solver.config import berkmin_config
from repro.solver.result import SolveStatus
from repro.solver.solver import Solver

JOBS = 4


def _quick_instances():
    return [
        instance
        for benchmark_class in paper_suite("quick")
        for instance in benchmark_class.instances
    ]


def _check(instance, status: SolveStatus) -> None:
    if status is not SolveStatus.UNKNOWN and status is not instance.expected:
        raise AssertionError(
            f"{instance.name}: got {status.value}, expected {instance.expected.value}"
        )


def test_sequential_quick_suite(benchmark):
    instances = _quick_instances()

    def run():
        statuses = []
        for instance in instances:
            result = Solver(instance.formula(), config=berkmin_config()).solve(
                max_conflicts=instance.max_conflicts
            )
            _check(instance, result.status)
            statuses.append(result.status)
        return statuses

    statuses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mode"] = "sequential/berkmin"
    benchmark.extra_info["instances"] = len(instances)
    benchmark.extra_info["unknown"] = sum(1 for s in statuses if s is SolveStatus.UNKNOWN)
    benchmark.extra_info["cpus"] = os.cpu_count()


def test_portfolio_quick_suite(benchmark):
    instances = _quick_instances()
    portfolio = PortfolioSolver(default_portfolio(JOBS), jobs=JOBS)

    def run():
        statuses = []
        for instance in instances:
            result = portfolio.solve(
                instance.formula(), max_conflicts=instance.max_conflicts
            )
            _check(instance, result.status)
            statuses.append(result.status)
        return statuses

    statuses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mode"] = f"portfolio/jobs={JOBS}"
    benchmark.extra_info["instances"] = len(instances)
    benchmark.extra_info["unknown"] = sum(1 for s in statuses if s is SolveStatus.UNKNOWN)
    benchmark.extra_info["cpus"] = os.cpu_count()
