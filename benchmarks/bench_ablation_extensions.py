"""Extension ablations — design choices beyond the paper's tables.

DESIGN.md calls out several knobs the paper fixes by fiat or flags as
future work; these benches quantify them:

* **Restart policy** (Section 10 calls BerkMin's fixed policy "very
  primitive ... close to random" and an important research direction):
  fixed vs geometric vs Luby vs none.
* **Remark 1** — naive most-active-variable scan vs the BerkMin561
  "strategy 3" heap.
* **Remark 2** — single current top clause vs a wider window of top
  clauses.
* **Clause minimization** — the post-paper MiniSat technique, off in
  BerkMin; measures what the 2002 solvers were leaving on the table.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _hanoi, _hole, _pipe
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hole7", lambda: _hole(7), SolveStatus.UNSAT, 80_000),
    Instance("pipe_w4s3", lambda: _pipe(4, 3), SolveStatus.UNSAT, 80_000),
    Instance("hanoi4_T14", lambda: _hanoi(4, 14), SolveStatus.UNSAT, 80_000),
]


@pytest.mark.parametrize("strategy", ["fixed", "geometric", "luby", "none"])
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_restart_policy_ablation(benchmark, instance, strategy):
    solve_case(benchmark, instance, "berkmin", restart_strategy=strategy)


@pytest.mark.parametrize("config_name", ["berkmin", "berkmin561"])
def test_remark1_global_selection(benchmark, config_name):
    # less_mobility-style workloads stress global selection the most;
    # hole7 makes thousands of formula-level decisions.
    instance = INSTANCES[0]
    solve_case(benchmark, instance, config_name, decision_strategy="global")


@pytest.mark.parametrize("window", [1, 2, 4, 8])
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_remark2_top_clause_window(benchmark, instance, window):
    solve_case(benchmark, instance, "berkmin", top_clause_window=window)


@pytest.mark.parametrize("minimize", [False, True], ids=["off", "on"])
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_clause_minimization(benchmark, instance, minimize):
    solve_case(benchmark, instance, "berkmin", clause_minimization=minimize)
