"""Table 6 bench — classes where Chaff and BerkMin are comparable.

Representatives of the "comparable" classes (Hole, where Chaff wins, and
the shallow pipelines, where neither dominates).  Full table:
``python -m repro.experiments.table6``.
"""

import pytest

from benchmarks.conftest import solve_case
from repro.experiments.suites import Instance, _blocks, _hole, _pipe, _pipe_fault, _xor
from repro.solver.result import SolveStatus

INSTANCES = [
    Instance("hole6", lambda: _hole(6), SolveStatus.UNSAT, 60_000),
    Instance("par_sat_s1", lambda: _xor(40, 36, 5, 1, True), SolveStatus.SAT, 60_000),
    Instance("pipe_w3s2", lambda: _pipe(3, 2), SolveStatus.UNSAT, 60_000),
    Instance("pipe_w5s2_f9", lambda: _pipe_fault(5, 2, 9), SolveStatus.SAT, 60_000),
    Instance("bw5_a", lambda: _blocks(5, 3, 9), SolveStatus.SAT, 60_000),
]
CONFIGS = ["chaff", "berkmin"]


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("instance", INSTANCES, ids=lambda i: i.name)
def test_table6_comparable(benchmark, instance, config_name):
    solve_case(benchmark, instance, config_name)
