#!/usr/bin/env python3
"""Bounded model checking with the BerkMin reproduction.

Several SAT-2002 instances in the paper's Table 10 (bmc2, f2clk, w08)
come from BMC.  This example builds a sequential design (a counter with
an adversarial enable input), unrolls it, and uses the solver to find —
or prove the absence of — a counterexample trace to a safety property,
then decodes and prints the trace.

Run:  python examples/bounded_model_checking.py
"""

import repro
from repro.circuits import counter_circuit, lfsr_circuit, unroll


def check(circuit, bound) -> None:
    encoding = unroll(circuit, bound)
    formula = encoding.formula
    result = repro.solve(formula)
    print(
        f"{circuit.name}, bound {bound:3d}: {result.status.value:6s} "
        f"({formula.num_variables} vars, {formula.num_clauses} clauses, "
        f"{result.stats.conflicts} conflicts)"
    )
    if result.is_sat:
        trace = encoding.decode_trace(result.model, circuit)
        bad_step = next(i for i, snap in enumerate(trace) if snap["bad"])
        print(f"  counterexample reaches the bad state at cycle {bad_step}:")
        for step, snapshot in enumerate(trace[: bad_step + 1]):
            bits = "".join(
                "1" if snapshot[r] else "0" for r in reversed(circuit.registers)
            )
            marker = "  <- BAD" if snapshot["bad"] else ""
            print(f"    cycle {step:3d}: state {bits}{marker}")


def main() -> None:
    # A 4-bit counter with an enable input; bad state = count 12.
    # Reaching it needs 12 enabled cycles, so bound 11 is UNSAT and
    # bound 12 yields a trace (the solver must choose the enables).
    counter = counter_circuit(4, target=12, with_enable=True)
    check(counter, bound=11)
    check(counter, bound=12)

    print()
    # An input-free LFSR: ground truth by plain simulation.
    lfsr = lfsr_circuit(taps=[3, 2], width=4, target=0b1111)
    depth = lfsr.depth_to_bad()
    print(f"{lfsr.name}: simulation says the target appears at cycle {depth}")
    check(lfsr, bound=depth - 1)
    check(lfsr, bound=depth)


if __name__ == "__main__":
    main()
