#!/usr/bin/env python3
"""SAT planning: Towers of Hanoi and blocks world.

The paper's *Hanoi* and *Blocksworld* benchmark classes are planning
problems compiled to CNF.  This example solves both domains end to end:
encode, solve, decode the plan, and replay it against the real game
rules to prove it is valid.

Run:  python examples/planning.py
"""

import repro
from repro.generators import (
    blocksworld_formula,
    decode_blocksworld_plan,
    decode_hanoi_plan,
    hanoi_formula,
    optimal_plan_length,
    random_blocks_state,
)
from repro.generators.blocksworld import validate_blocksworld_plan
from repro.generators.hanoi import optimal_hanoi_length, validate_hanoi_plan


def solve_hanoi(disks: int) -> None:
    horizon = optimal_hanoi_length(disks)
    print(f"--- Towers of Hanoi, {disks} disks, horizon {horizon} ---")
    result = repro.solve(hanoi_formula(disks))
    assert result.is_sat
    plan = decode_hanoi_plan(result.model, disks, horizon)
    assert validate_hanoi_plan(plan, disks)
    for step, (disk, source, destination) in enumerate(plan, start=1):
        print(f"  step {step:2d}: move disk {disk} from peg {source} to peg {destination}")
    # One step less is impossible: the encoding knows the optimum.
    shorter = repro.solve(hanoi_formula(disks, horizon - 1))
    print(f"  horizon {horizon - 1}: {shorter.status.value} (optimality certified)")


def solve_blocksworld(num_blocks: int, seed_initial: int, seed_goal: int) -> None:
    initial = random_blocks_state(num_blocks, seed_initial)
    goal = random_blocks_state(num_blocks, seed_goal)
    optimum = optimal_plan_length(initial, goal)
    print(f"--- Blocks world, {num_blocks} blocks ---")
    print(f"  initial: {initial.stacks}")
    print(f"  goal:    {goal.stacks}")
    print(f"  optimal plan length (BFS ground truth): {optimum}")
    result = repro.solve(blocksworld_formula(initial, goal, optimum))
    assert result.is_sat
    plan = decode_blocksworld_plan(result.model, num_blocks, optimum)
    assert validate_blocksworld_plan(plan, initial, goal)
    table = num_blocks
    for step, action in enumerate(plan, start=1):
        if action is None:
            print(f"  step {step}: (no-op)")
        else:
            block, destination = action
            target = "the table" if destination == table else f"block {destination}"
            print(f"  step {step}: move block {block} onto {target}")


def main() -> None:
    solve_hanoi(3)
    print()
    solve_blocksworld(5, seed_initial=3, seed_goal=9)


if __name__ == "__main__":
    main()
