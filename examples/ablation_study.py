#!/usr/bin/env python3
"""A miniature version of the paper's ablation methodology.

Runs BerkMin and every ablation configuration from Tables 1, 2, 4 and 5
on two contrasting instances (a pigeonhole refutation and a Hanoi plan),
reporting conflicts and decisions — the machine-independent quantities
the full experiment harness compares.  For the real tables, run
``python -m repro experiment all``.

Run:  python examples/ablation_study.py
"""

import time

import repro
from repro.generators import hanoi_formula, pigeonhole_formula
from repro.solver import config_by_name

CONFIGS = [
    "berkmin",           # everything on
    "less_sensitivity",  # Table 1: Chaff-style variable activities
    "less_mobility",     # Table 2: global most-active decisions
    "sat_top",           # Table 4: always satisfy the top clause
    "unsat_top",         # Table 4: always falsify the chosen literal
    "take_rand",         # Table 4: random phase
    "limited_keeping",   # Table 5: GRASP-style clause deletion
    "chaff",             # Tables 6-10: the full Chaff-style baseline
]


def run_instance(name, formula, budget=60_000):
    print(f"\n=== {name} ===")
    print(f"{'config':17s} {'status':8s} {'conflicts':>9s} {'decisions':>9s} {'seconds':>8s}")
    for config_name in CONFIGS:
        config = config_by_name(config_name)
        started = time.perf_counter()
        result = repro.solve(formula, config=config, max_conflicts=budget)
        elapsed = time.perf_counter() - started
        status = result.status.value if not result.is_unknown else "ABORT"
        print(
            f"{config_name:17s} {status:8s} {result.stats.conflicts:9d} "
            f"{result.stats.decisions:9d} {elapsed:8.2f}"
        )


def main() -> None:
    run_instance("hole7 (pigeonhole, UNSAT)", pigeonhole_formula(7))
    run_instance("hanoi4 at T=14 (planning, UNSAT)", hanoi_formula(4, 14))


if __name__ == "__main__":
    main()
