#!/usr/bin/env python3
"""Combinational equivalence checking — the paper's home turf.

BerkMin came out of Cadence Berkeley Labs; equivalence checking of
combinational circuits (the *Miters* benchmark class) is the workload it
was built for.  This example:

1. builds two architecturally different 8-bit adders (ripple-carry vs
   carry-select) and proves them equivalent via a miter CNF;
2. injects a realistic single-gate fault and lets the solver find a
   counterexample input vector, cross-checked against simulation;
3. checks a random circuit against an aggressively rewritten copy.

Run:  python examples/equivalence_checking.py
"""

from repro.circuits import (
    carry_select_adder,
    check_equivalence,
    inject_fault,
    random_circuit,
    rewrite_circuit,
    ripple_carry_adder,
)


def main() -> None:
    # --- 1. Ripple-carry vs carry-select adder ---------------------------
    width = 8
    ripple = ripple_carry_adder(width)
    select = carry_select_adder(width, block_size=2)
    print(f"ripple adder: {ripple.num_gates} gates; "
          f"carry-select adder: {select.num_gates} gates")
    equivalent, _ = check_equivalence(ripple, select)
    print("adders equivalent:", equivalent)

    # --- 2. Fault localization via counterexample ------------------------
    faulty, _witness = inject_fault(select, seed=7)
    equivalent, counterexample = check_equivalence(ripple, faulty)
    print("faulty adder equivalent:", equivalent)
    assert counterexample is not None
    a = sum(1 << i for i in range(width) if counterexample[f"a{i}"])
    b = sum(1 << i for i in range(width) if counterexample[f"b{i}"])
    carry = counterexample["cin"]
    print(f"counterexample: a={a}, b={b}, cin={int(carry)}")
    good = ripple.output_values(counterexample)
    bad = faulty.output_values(counterexample)
    differing = [net for net in good if good[net] != bad[net]]
    print("outputs that differ on that vector:", differing)

    # --- 3. Random logic vs rewritten logic -------------------------------
    original = random_circuit(num_inputs=16, num_gates=200, seed=42)
    rewritten = rewrite_circuit(original, seed=43, probability=0.9)
    print(
        f"random circuit: {original.num_gates} gates; "
        f"rewritten copy: {rewritten.num_gates} gates"
    )
    equivalent, _ = check_equivalence(original, rewritten)
    print("rewrite preserved the function:", equivalent)


if __name__ == "__main__":
    main()
