#!/usr/bin/env python3
"""SAT-based test-pattern generation (ATPG).

The paper's opening sentence lists ATPG among the problems that reduce
to SAT.  This example generates test patterns for every single stuck-at
fault of a carry-select adder: each fault becomes a miter, each SAT
answer a test vector, each UNSAT answer a proof the fault is untestable
(redundant logic).  Every pattern is cross-checked by simulation.

Run:  python examples/atpg.py
"""

from repro.circuits import carry_select_adder, random_circuit, run_atpg
from repro.circuits.atpg import pattern_detects


def report_for(circuit) -> None:
    print(f"--- ATPG for {circuit.name} "
          f"({len(circuit.inputs)} inputs, {circuit.num_gates} gates) ---")
    report = run_atpg(circuit)
    patterns = report.test_set()
    print(f"faults:          {report.total_faults}")
    print(f"testable:        {report.testable_faults}")
    print(f"fault coverage:  {100 * report.coverage:.1f}%")
    print(f"test set size:   {len(patterns)} distinct patterns")
    if report.untestable_faults:
        shown = ", ".join(str(f) for f in report.untestable_faults[:5])
        print(f"untestable (redundant logic): {shown}"
              + (" ..." if len(report.untestable_faults) > 5 else ""))
    # Cross-check every generated pattern by simulation.
    for result in report.results:
        if result.testable:
            assert pattern_detects(circuit, result.fault, result.pattern)
    print("all patterns verified by simulation\n")


def main() -> None:
    report_for(carry_select_adder(3, block_size=2))
    report_for(random_circuit(num_inputs=6, num_gates=30, seed=2026))


if __name__ == "__main__":
    main()
