#!/usr/bin/env python3
"""Quickstart: solve CNF formulas with the BerkMin reproduction.

Covers the core public API in ~60 lines: building formulas, solving with
different configurations, reading models and statistics, DIMACS I/O,
incremental solving under assumptions, and proof-checked UNSAT answers.

Run:  python examples/quickstart.py
"""

import repro
from repro.proof import check_rup_proof
from repro.solver import Solver, berkmin_config, chaff_config


def main() -> None:
    # --- 1. Solve a formula given as plain clause lists -----------------
    result = repro.solve([[1, 2], [-1, 2], [-2, 3]])
    print("status:", result.status.value)
    print("model: ", result.model)

    # --- 2. An unsatisfiable formula, with a machine-checked proof ------
    xor_like = repro.CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    solver = Solver(xor_like, config=berkmin_config(proof_logging=True))
    result = solver.solve()
    assert result.is_unsat
    check_rup_proof(xor_like, result.proof)
    print("UNSAT proven; DRUP proof of", len(result.proof), "steps verified")

    # --- 3. DIMACS round-trip -------------------------------------------
    text = repro.write_dimacs(xor_like)
    reloaded = repro.parse_dimacs(text)
    print("dimacs round-trip:", reloaded.num_variables, "vars,",
          reloaded.num_clauses, "clauses")

    # --- 4. Compare solver configurations on one instance ---------------
    from repro.generators import pigeonhole_formula

    hole = pigeonhole_formula(6)  # 7 pigeons, 6 holes: classic UNSAT
    for config in (berkmin_config(), chaff_config()):
        outcome = repro.solve(hole, config=config)
        print(
            f"hole6 under {config.name:8s}: {outcome.status.value}, "
            f"{outcome.stats.conflicts} conflicts, "
            f"{outcome.stats.decisions} decisions"
        )

    # --- 5. Incremental solving with assumptions -------------------------
    incremental = Solver(repro.CnfFormula([[1, 2, 3]]))
    print("assume -1, -2:", incremental.solve(assumptions=[-1, -2]).status.value)
    print("assume -1, -2, -3:",
          incremental.solve(assumptions=[-1, -2, -3]).status.value,
          "(under assumptions only)")
    incremental.add_clause([-3])  # clauses can be added between calls
    print("after adding -3:", incremental.solve(assumptions=[-1]).model)

    # --- 6. Failed-assumption cores ---------------------------------------
    diagnoser = Solver(repro.CnfFormula([[-1, -2], [3, 4]]))
    outcome = diagnoser.solve(assumptions=[3, 1, 2])
    print("conflicting assumptions:", outcome.status.value,
          "core:", sorted(outcome.core))  # only 1 and 2 clash; 3 is innocent

    # --- 7. Model enumeration ---------------------------------------------
    from repro.solver import count_models

    print("models of (x1 or x2):", count_models(repro.CnfFormula([[1, 2]])))


if __name__ == "__main__":
    main()
