#!/usr/bin/env python3
"""A complete Sudoku solver built on the public API.

Encodes a 9x9 puzzle to CNF, solves it with BerkMin, decodes the grid,
and double-checks uniqueness by blocking the found solution and
re-solving (UNSAT means the puzzle has exactly one solution).

Run:  python examples/sudoku.py
"""

import repro
from repro.generators import decode_sudoku, sudoku_formula, sudoku_puzzle


def render(grid: list[list[int]]) -> str:
    lines = []
    for row_index, row in enumerate(grid):
        if row_index % 3 == 0 and row_index:
            lines.append("------+-------+------")
        cells = []
        for column_index, digit in enumerate(row):
            if column_index % 3 == 0 and column_index:
                cells.append("|")
            cells.append(str(digit) if digit else ".")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    puzzle = sudoku_puzzle()
    print("puzzle:")
    print(render(puzzle))

    formula = sudoku_formula(puzzle)
    print(f"\nencoded: {formula.num_variables} variables, {formula.num_clauses} clauses")
    result = repro.solve(formula)
    assert result.is_sat
    solution = decode_sudoku(result.model)
    print(f"solved in {result.stats.decisions} decisions, "
          f"{result.stats.conflicts} conflicts\n")
    print(render(solution))

    # Uniqueness check: forbid this exact solution and re-solve.
    blocking_clause = [
        -((row * 9 + column) * 9 + solution[row][column])
        for row in range(9)
        for column in range(9)
    ]
    formula.add_clause(blocking_clause)
    second = repro.solve(formula)
    print("\nsolution is unique:", second.is_unsat)


if __name__ == "__main__":
    main()
