"""Parallel solving: configuration portfolios and bulk batches.

The paper's tables are races between heuristic configurations — BerkMin,
Chaff, and the ablations — and no single configuration wins every
family.  This example turns that into practice:

1. enumerate the public config registry (``repro.available_configs``);
2. race a diverse portfolio on one hard formula — the first definite
   answer wins and reports which configuration produced it;
3. solve a mixed batch of formulas concurrently, with per-instance
   budgets and aggregated statistics.

Run: ``python examples/parallel_solving.py``
"""

import repro
from repro.generators import pigeonhole_formula, planted_ksat, queens_formula


def main() -> None:
    # 1. The config registry is a public API: name -> one-line summary.
    catalog = repro.available_configs()
    print(f"{len(catalog)} registered configurations:")
    for name in ("berkmin", "chaff", "berkmin561"):
        print(f"  {name:12s} {catalog[name]}")

    # Typos in overrides fail loudly, naming the nearest valid field.
    try:
        repro.config_by_name("berkmin", restart_intervall=100)
    except TypeError as error:
        print(f"\ntypo caught: {str(error).split('(')[0].strip()}")

    # 2. Portfolio: race 4 diverse configurations, first answer wins.
    hole = pigeonhole_formula(7)
    portfolio = repro.PortfolioSolver(jobs=4)
    print(f"\nracing {[c.name for c in portfolio.configs]} on hole7 ...")
    result = portfolio.solve(hole, max_seconds=60.0)
    print(f"  {result.status.value} by {result.config_name!r} "
          f"in {result.wall_seconds:.2f}s "
          f"({result.stats.conflicts} conflicts by the winner)")

    # 3. Batch: many formulas, bounded pool, per-instance budgets.
    formulas = [
        pigeonhole_formula(5),            # UNSAT
        planted_ksat(24, 98, 3, seed=7),  # SAT by construction
        queens_formula(7),                # SAT
        pigeonhole_formula(6),            # UNSAT
    ]
    batch = repro.solve_batch(formulas, jobs=2, max_conflicts=50_000)
    print(f"\nbatch of {len(batch)} formulas "
          f"({batch.num_sat} SAT, {batch.num_unsat} UNSAT, "
          f"{batch.num_unknown} UNKNOWN) in {batch.wall_seconds:.2f}s:")
    for index, item in enumerate(batch):
        print(f"  [{index}] {item.status.value:7s} "
              f"{item.stats.conflicts:6d} conflicts, {item.wall_seconds:.3f}s")
    print(f"aggregated: {batch.stats.conflicts} conflicts, "
          f"{batch.stats.decisions} decisions across the batch")


if __name__ == "__main__":
    main()
